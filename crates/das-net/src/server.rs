//! The `dasd` storage-server daemon.
//!
//! One daemon per (simulated) storage server, listening on a real TCP
//! port. It owns that server's strips — reusing [`das_pfs`]'s
//! [`StorageServer`] as the strip store — plus a per-daemon copy of
//! every file's metadata, kept consistent by the client issuing
//! metadata operations to all servers in the same order.
//!
//! The interesting handler is [`Message::Execute`]: the daemon runs
//! the paper's Fig. 3 decision workflow over its own metadata
//! (`das_core::decide`), and on acceptance computes the kernel over
//! its **primary** strips, fetching dependent strips it does not hold
//! from peer daemons — per task, with no cross-task cache, exactly the
//! traffic `das_core`'s `predict_nas_fetches` prices. A rejected
//! request comes back as [`ErrorCode::FallbackToNormalIo`] and the
//! client serves it as normal I/O.
//!
//! Fault tolerance: peer traffic rides the shared [`RetryPolicy`]
//! (timeouts, reconnect, bounded backoff), dependence and
//! redistribution fetches fail over across a strip's holders, and a
//! strip whose holders are all unreachable is reported as the typed,
//! transient [`ErrorCode::Retryable`] — the client's cue to retry or
//! degrade the scheme rather than hang. The daemon can also *inject*
//! faults from a deterministic [`FaultPlan`] (refused accepts,
//! mid-frame cuts, delays, transient errors, corrupted checksums) so
//! the chaos suite can exercise all of the above on a loopback
//! cluster.

use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use das_core::{dependent_strips, ActiveStorageClient, Decision, RequestOptions};
use das_kernels::kernel_by_name;
use das_pfs::{FileId, FileMeta, Layout, ServerId, StorageServer, StripId, StripeSpec};
use das_runtime::StripAssembly;

use crate::codec::{
    encode_frame_traced, raw_frame_parts, read_frame, read_frame_ex, write_frame_vectored,
    write_message, write_message_traced, CountingStream, NetError,
};
use crate::fault::{FaultAction, FaultPlan, FaultPoint};
use crate::peer::PeerTable;
use crate::proto::{ErrorCode, Message, Role, WireStats, CAP_SPANS, CAP_TRACE, LOCAL_CAPS};
use crate::retry::RetryPolicy;
use das_obs::log::{event, Level};
use das_obs::{OpClass, SpanStore, Stage, NOTE_NONE, NOTE_SHED_BACKLOG, NOTE_SHED_DEADLINE};

/// Lock a mutex, recovering from poison: a worker that panicked while
/// holding a daemon lock must not wedge every other connection.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// How often an idle connection handler wakes to poll the shutdown
/// flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// How often an idle (nonblocking) accept loop wakes to poll for new
/// connections and the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Default admission bound: how many requests a daemon lets queue
/// (event-loop engine: the fair queue's total depth; thread engine:
/// concurrently executing handlers) before shedding new arrivals with
/// the typed, transient [`ErrorCode::Overloaded`]. Sized to admit a
/// couple of fully pipelined connections (2 × `MAX_INFLIGHT`) while
/// keeping worst-case queueing delay bounded.
pub const DEFAULT_MAX_BACKLOG: usize = 256;

/// Control-plane requests that are never shed by admission control or
/// an expired deadline budget: `Shutdown` must always work (a chaos
/// harness tears its cluster down *under* overload), and the
/// stats/metrics/span reads are what an operator or bench uses to
/// watch an overloaded daemon — `das trace` of a shed request must be
/// answerable *during* the overload that shed it.
pub(crate) fn shed_exempt(msg: &Message) -> bool {
    matches!(
        msg,
        Message::Shutdown
            | Message::Ping
            | Message::Stats
            | Message::ResetStats
            | Message::MetricsDump
            | Message::TraceDump { .. }
            | Message::SlowLog { .. }
    )
}

/// Coarse span/attribution class of a request (`OpClass` wire
/// discriminants are stable; see `das-obs`).
pub(crate) fn op_class(msg: &Message) -> OpClass {
    match msg {
        Message::GetStrip { .. } => OpClass::Get,
        Message::PutStrip { .. } => OpClass::Put,
        Message::Execute { .. } => OpClass::Exec,
        Message::RedistPrepare { .. } | Message::RedistCommit { .. } => OpClass::Redist,
        Message::CreateFile { .. } | Message::Lookup { .. } | Message::GetDistribution { .. } => {
            OpClass::Meta
        }
        Message::Ping
        | Message::Stats
        | Message::ResetStats
        | Message::MetricsDump
        | Message::TraceDump { .. }
        | Message::SlowLog { .. }
        | Message::Shutdown => OpClass::Control,
        _ => OpClass::Other,
    }
}

/// Traffic class of a connection, fixed by the peer's `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnClass {
    /// Client↔server: normal I/O, metadata, control.
    Client,
    /// Server↔server: dependence fetches, redistribution pulls,
    /// replica forwarding.
    Server,
}

/// Registry of every connection's byte counters, grouped by class.
/// Counters are shared with the live [`CountingStream`]s, so sums are
/// always current; closed connections keep contributing their totals.
#[derive(Default)]
pub struct StatsRegistry {
    conns: Mutex<Vec<ConnCounters>>,
}

/// One connection's shared in/out counters and traffic class.
type ConnCounters = (ConnClass, Arc<AtomicU64>, Arc<AtomicU64>);

impl StatsRegistry {
    /// Track a connection's counters under `class`.
    pub fn register(&self, class: ConnClass, bytes_in: Arc<AtomicU64>, bytes_out: Arc<AtomicU64>) {
        lock(&self.conns).push((class, bytes_in, bytes_out));
    }

    /// Current totals per class.
    pub fn snapshot(&self) -> WireStats {
        let mut s = WireStats::default();
        for (class, bi, bo) in lock(&self.conns).iter() {
            let (i, o) = (bi.load(Ordering::Relaxed), bo.load(Ordering::Relaxed));
            match class {
                ConnClass::Client => {
                    s.client_in += i;
                    s.client_out += o;
                }
                ConnClass::Server => {
                    s.server_in += i;
                    s.server_out += o;
                }
            }
        }
        s
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for (_, bi, bo) in lock(&self.conns).iter() {
            bi.store(0, Ordering::Relaxed);
            bo.store(0, Ordering::Relaxed);
        }
    }
}

/// Which connection core a daemon runs.
///
/// Both engines speak the identical wire protocol through the same
/// codec, fault injector and dispatch logic — the chaos suite passes
/// bit-identically on either. They differ in how connections map to
/// threads:
///
/// * [`Engine::EventLoop`] (the default): sharded nonblocking event
///   loop. A few shard threads each own many sockets, incremental
///   frame decoding allows **pipelining** (multiple in-flight
///   requests per connection, responses matched by trace id, possibly
///   out of order), and request handling runs on a worker pool.
/// * [`Engine::Threads`]: the original thread-per-connection core —
///   one pooled handler thread blocks on each connection, strictly
///   serial per connection. Kept selectable so `das bench` can
///   measure both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Sharded nonblocking event loop with request pipelining.
    #[default]
    EventLoop,
    /// Blocking thread-per-connection (the seed core).
    Threads,
}

impl Engine {
    /// Parse a CLI name (`evloop` / `threads`).
    pub fn parse(s: &str) -> Option<Engine> {
        match s {
            "evloop" | "event-loop" | "eventloop" => Some(Engine::EventLoop),
            "threads" | "thread-per-conn" => Some(Engine::Threads),
            _ => None,
        }
    }

    /// The engine's canonical CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Engine::EventLoop => "evloop",
            Engine::Threads => "threads",
        }
    }
}

/// Static configuration of one daemon.
#[derive(Debug, Clone)]
pub struct DasdConfig {
    /// This server's id (index into `cluster`).
    pub id: u32,
    /// Listen address of **every** server in the cluster, by id.
    pub cluster: Vec<String>,
    /// Connection-handler pool size. For [`Engine::Threads`] it must
    /// exceed the number of simultaneously open inbound connections
    /// (clients + peers); for [`Engine::EventLoop`] it sizes the
    /// request worker pool (connections are not pinned to threads).
    pub pool: usize,
    /// Fault-injection plan (empty by default: inject nothing).
    pub fault: Arc<FaultPlan>,
    /// Retry/timeout policy for this daemon's outbound peer calls.
    pub retry: RetryPolicy,
    /// Which connection core to run.
    pub engine: Engine,
    /// Admission bound before the daemon sheds requests with
    /// [`ErrorCode::Overloaded`] (see [`DEFAULT_MAX_BACKLOG`]).
    pub max_backlog: usize,
}

impl DasdConfig {
    /// Config for server `id` of `cluster` with the default pool (16),
    /// no fault injection, the default retry policy, and the default
    /// event-loop engine.
    pub fn new(id: u32, cluster: Vec<String>) -> Self {
        DasdConfig {
            id,
            cluster,
            pool: 16,
            fault: Arc::new(FaultPlan::none()),
            retry: RetryPolicy::default(),
            engine: Engine::EventLoop,
            max_backlog: DEFAULT_MAX_BACKLOG,
        }
    }

    /// Replace the fault plan.
    pub fn with_fault(mut self, fault: Arc<FaultPlan>) -> Self {
        self.fault = fault;
        self
    }

    /// Replace the peer retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Select the connection core.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Replace the admission bound (minimum 1).
    pub fn with_max_backlog(mut self, max_backlog: usize) -> Self {
        self.max_backlog = max_backlog.max(1);
        self
    }
}

/// Metadata + strip store of one daemon, behind the big lock. Network
/// calls never happen while this is held.
struct Inner {
    store: StorageServer,
    files: Vec<FileMeta>,
    by_name: HashMap<String, FileId>,
    /// Strips staged by `RedistPrepare`, keyed by file id.
    staged: HashMap<u32, Vec<(StripId, Bytes)>>,
}

impl Inner {
    fn meta(&self, file: u32) -> Result<&FileMeta, Message> {
        self.files.get(file as usize).ok_or_else(|| err(ErrorCode::NoSuchFile, format!("no file {file}")))
    }
}

/// Lazily-registered grid of `dasd_stage_duration_us{stage,op}`
/// histogram handles: after the first observation of a cell, every
/// further one is a couple of atomics — no registry (lock + label
/// formatting) lookup on the per-request path. Cells never observed
/// never appear in a metrics dump.
pub(crate) struct StageHists {
    metrics: Arc<das_obs::Registry>,
    grid: Vec<std::sync::OnceLock<Arc<das_obs::Histogram>>>,
}

impl StageHists {
    fn new(metrics: Arc<das_obs::Registry>) -> StageHists {
        let cells = Stage::ALL.len() * OpClass::ALL.len();
        StageHists { metrics, grid: (0..cells).map(|_| std::sync::OnceLock::new()).collect() }
    }

    /// Feed one stage duration into the attribution histogram.
    pub(crate) fn observe(&self, stage: Stage, op: OpClass, dur_us: u64) {
        let cell = stage as usize * OpClass::ALL.len() + op as usize;
        self.grid[cell]
            .get_or_init(|| {
                self.metrics.histogram(
                    "dasd_stage_duration_us",
                    &[("stage", stage.name()), ("op", op.name())],
                )
            })
            .observe(dur_us);
    }
}

/// Per-request context threaded from the connection layer into
/// [`process_request`]: what the peer's negotiated capabilities allow,
/// and the pre-reserved root span id sub-spans hang off.
#[derive(Clone, Copy)]
pub(crate) struct RequestCtx {
    /// Peer negotiated [`CAP_SPANS`]: the span-dump RPCs
    /// (`TraceDump`/`SlowLog`) are admissible on this connection.
    pub(crate) spans_ok: bool,
    /// Root span id reserved for this traced request (0 when the
    /// request is untraced — nothing is recorded for it).
    pub(crate) root: u32,
}

impl RequestCtx {
    /// Build the context for one decoded request: reserve a root span
    /// id iff the request carries a trace id.
    pub(crate) fn new(shared: &Shared, spans_ok: bool, trace: Option<u64>) -> RequestCtx {
        RequestCtx { spans_ok, root: if trace.is_some() { shared.spans.reserve() } else { 0 } }
    }
}

/// State shared by every thread of one daemon.
pub struct Shared {
    pub(crate) id: ServerId,
    inner: Mutex<Inner>,
    as_client: ActiveStorageClient,
    peers: PeerTable,
    pub(crate) stats: Arc<StatsRegistry>,
    pub(crate) metrics: Arc<das_obs::Registry>,
    /// The daemon's flight recorder behind `TraceDump`/`SlowLog`.
    pub(crate) spans: Arc<SpanStore>,
    /// Cached stage-attribution histogram handles.
    pub(crate) stage_hists: StageHists,
    pub(crate) shutdown: AtomicBool,
    pub(crate) fault: Arc<FaultPlan>,
    /// Admission bound shared by both engines.
    pub(crate) max_backlog: usize,
    /// Requests currently inside a handler — the thread engine's
    /// admission gauge (the event loop bounds its fair queue instead).
    pub(crate) active: AtomicUsize,
}

/// Time-and-record one finished stage: always feeds the
/// stage-attribution histogram; records a span only for traced
/// requests (the flight recorder holds nothing `das trace` could not
/// look up). Returns the span id (0 when untraced). Aggregate stages
/// (an execute's total kernel time) appear as one contiguous block
/// ending at record time.
pub(crate) fn record_stage(
    shared: &Shared,
    trace: Option<u64>,
    parent: u32,
    stage: Stage,
    op: OpClass,
    note: u8,
    dur: Duration,
) -> u32 {
    let dur_us = dur.as_micros() as u64;
    shared.stage_hists.observe(stage, op, dur_us);
    match trace {
        Some(t) => {
            let start_us = shared.spans.now_us().saturating_sub(dur_us);
            shared.spans.record(t, parent, stage, op, note, start_us, dur_us)
        }
        None => 0,
    }
}

/// Close a request's root span under its pre-reserved id — as
/// `Dispatch` when it ran, as `Shed` (annotated with the reason) when
/// admission control or an expired budget killed it.
pub(crate) fn finish_root(
    shared: &Shared,
    trace: Option<u64>,
    ctx: RequestCtx,
    stage: Stage,
    op: OpClass,
    note: u8,
    started: Instant,
) {
    let dur_us = started.elapsed().as_micros() as u64;
    shared.stage_hists.observe(stage, op, dur_us);
    if let Some(t) = trace {
        let start_us = shared.spans.now_us().saturating_sub(dur_us);
        shared.spans.record_reserved(ctx.root, t, 0, stage, op, note, start_us, dur_us);
    }
}

/// A running daemon (listener + worker threads).
pub struct DasdHandle {
    addr: SocketAddr,
    threads: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl DasdHandle {
    /// The daemon's actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the daemon to stop, without a network round-trip: the
    /// accept loop stops taking connections at its next poll, requests
    /// already in flight run to completion and their replies are
    /// flushed, and then every thread exits. Deterministic — callers
    /// follow with [`DasdHandle::join`], which returns once the drain
    /// is done, rather than sleeping and hoping.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Block until the daemon has shut down (a client sent
    /// [`Message::Shutdown`], or [`DasdHandle::shutdown`] was called)
    /// and every thread exited.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Start a daemon on an already-bound listener. Binding is the
/// caller's job so a test harness can grab ephemeral ports for the
/// whole cluster *before* any daemon needs the full address list.
pub fn spawn(cfg: DasdConfig, listener: TcpListener) -> std::io::Result<DasdHandle> {
    assert!((cfg.id as usize) < cfg.cluster.len(), "id {} outside cluster of {}", cfg.id, cfg.cluster.len());
    assert!(cfg.pool >= 2, "need at least two connection handlers");
    let addr = listener.local_addr()?;
    let stats = Arc::new(StatsRegistry::default());
    let metrics = Arc::new(das_obs::Registry::new());
    let spans = Arc::new(SpanStore::new(cfg.id));
    let shared = Arc::new(Shared {
        id: ServerId(cfg.id),
        inner: Mutex::new(Inner {
            store: StorageServer::new(ServerId(cfg.id)),
            files: Vec::new(),
            by_name: HashMap::new(),
            staged: HashMap::new(),
        }),
        as_client: ActiveStorageClient::with_builtin_features()
            .with_observability(Arc::clone(&metrics)),
        peers: PeerTable::with_policy(
            cfg.id,
            cfg.cluster,
            Arc::clone(&stats),
            cfg.retry,
            Arc::clone(&metrics),
        )
        .with_span_store(Arc::clone(&spans)),
        stats,
        stage_hists: StageHists::new(Arc::clone(&metrics)),
        metrics,
        spans,
        shutdown: AtomicBool::new(false),
        fault: cfg.fault,
        max_backlog: cfg.max_backlog.max(1),
        active: AtomicUsize::new(0),
    });
    // Register the shed counters up front so a metrics dump carries
    // them (at zero) before the first overload, not only after.
    shared.metrics.counter("dasd_requests_shed_total", &[("reason", "backlog")]);
    shared.metrics.counter("dasd_requests_shed_total", &[("reason", "deadline")]);

    let threads = match cfg.engine {
        Engine::EventLoop => {
            crate::engine::spawn_event_loop(Arc::clone(&shared), listener, cfg.pool, shared.max_backlog)?
        }
        Engine::Threads => spawn_thread_pool(Arc::clone(&shared), listener, cfg.pool)?,
    };
    Ok(DasdHandle { addr, threads, shared })
}

/// The [`Engine::Threads`] core: a pooled blocking handler thread per
/// connection, plus a nonblocking accept loop that polls the shutdown
/// flag — shutdown needs no throwaway wake-up connection.
fn spawn_thread_pool(
    shared: Arc<Shared>,
    listener: TcpListener,
    pool: usize,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    listener.set_nonblocking(true)?;
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let mut threads = Vec::with_capacity(pool + 1);
    for _ in 0..pool {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || loop {
            let stream = match lock(&rx).recv() {
                Ok(s) => s,
                Err(_) => break,
            };
            handle_conn(&shared, stream);
        }));
    }
    threads.push(std::thread::spawn(move || {
        accept_loop(&shared, &listener, |s| tx.send(s).is_ok());
        // Dropping `tx` releases the worker pool.
    }));
    Ok(threads)
}

/// Nonblocking accept loop shared by both engines: polls the shutdown
/// flag between accepts, applies accept-point fault injection, and
/// hands live sockets to `submit`. Returns when the daemon shuts down
/// or `submit` reports its receiver gone.
pub(crate) fn accept_loop(
    shared: &Shared,
    listener: &TcpListener,
    mut submit: impl FnMut(TcpStream) -> bool,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let s = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if matches!(e.kind(), std::io::ErrorKind::WouldBlock) => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(_) => continue,
        };
        // A listener in nonblocking mode hands out sockets whose mode
        // is platform-dependent; pin it so each engine sets what it
        // needs.
        let _ = s.set_nonblocking(false);
        match shared.fault.decide(FaultPoint::Accept) {
            Some(FaultAction::RefuseAccept) => {
                drop(s); // accepted, immediately closed
                continue;
            }
            Some(FaultAction::Delay { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            _ => {}
        }
        if !submit(s) {
            return;
        }
    }
}

fn err(code: ErrorCode, message: impl Into<String>) -> Message {
    Message::Error { code, message: message.into() }
}

/// Serve one connection until EOF or daemon shutdown.
fn handle_conn(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut stream = CountingStream::new(stream);

    // First frame must be a Hello; it fixes the traffic class.
    let hello = loop {
        match read_frame(&mut stream) {
            Ok(Some((m, _))) => break m,
            Ok(None) => return,
            Err(NetError::Io(e))
                if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    };
    let (class, peer_caps) = match hello {
        Message::Hello { role: Role::Client, caps, .. } => (ConnClass::Client, caps),
        Message::Hello { role: Role::Server, caps, .. } => (ConnClass::Server, caps),
        _ => {
            let _ = write_message(&mut stream, &err(ErrorCode::BadRequest, "expected Hello"));
            return;
        }
    };
    // Trace ids are echoed (and propagated to peers) only for peers
    // that negotiated the capability; a legacy peer keeps seeing
    // bit-identical version-1 frames.
    let peer_traced = peer_caps & CAP_TRACE != 0;
    // Span-dump RPCs are likewise capability-gated per connection.
    let peer_spans = peer_caps & CAP_SPANS != 0;
    shared.stats.register(class, stream.bytes_in(), stream.bytes_out());
    if write_message(&mut stream, &Message::HelloOk { server_id: shared.id.0, caps: LOCAL_CAPS })
        .is_err()
    {
        return;
    }

    loop {
        let frame = match read_frame_ex(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(NetError::Io(e))
                if matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let arrived = Instant::now();
        let trace = if peer_traced { frame.trace } else { None };
        let echo = trace;
        let deadline =
            frame.budget_ms.map(|ms| Instant::now() + Duration::from_millis(u64::from(ms)));
        let decode_us = frame.decode_us;
        let msg = frame.msg;
        let opc = op_class(&msg);
        let ctx = RequestCtx::new(shared, peer_spans, trace);
        record_stage(shared, trace, ctx.root, Stage::Decode, opc, NOTE_NONE, Duration::from_micros(decode_us));
        // Admission control for the blocking engine: this handler is
        // about to be busy for the whole request, so the number of
        // concurrently executing handlers *is* the backlog.
        let admitted = shared.active.fetch_add(1, Ordering::SeqCst) < shared.max_backlog
            || shed_exempt(&msg);
        let action = if admitted {
            // Strictly serial per connection: queue-wait is just the
            // decode-to-dispatch gap, recorded for engine parity.
            record_stage(shared, trace, ctx.root, Stage::QueueWait, opc, NOTE_NONE, arrived.elapsed());
            process_request(shared, class, msg, trace, deadline, ctx)
        } else {
            shared.metrics.counter("dasd_requests_shed_total", &[("reason", "backlog")]).inc();
            finish_root(shared, trace, ctx, Stage::Shed, opc, NOTE_SHED_BACKLOG, arrived);
            ReplyAction::Reply(err(ErrorCode::Overloaded, "request shed: handler pool saturated"))
        };
        shared.active.fetch_sub(1, Ordering::SeqCst);
        let write_started = Instant::now();
        match action {
            ReplyAction::Reply(reply) => {
                if write_message_traced(&mut stream, &reply, echo).is_err() {
                    return;
                }
            }
            ReplyAction::ReplyStrip(bytes) => {
                // Zero-copy reply: the strip's store bytes go to the
                // socket as the frame's body segment; only the ~30-byte
                // head is built.
                let prefix = (bytes.len() as u32).to_le_bytes();
                let parts = raw_frame_parts(STRIP_DATA_OPCODE, &prefix, &bytes, echo);
                if write_frame_vectored(&mut stream, &parts).is_err() {
                    return;
                }
            }
            ReplyAction::ReplyCorrupt(reply) => {
                // The real reply with its checksum trailer flipped: the
                // peer's codec must reject it as corrupt, not parse it.
                let mut frame = encode_frame_traced(&reply, echo);
                let last = frame.len() - 1;
                frame[last] ^= 0xFF;
                if stream.write_all(&frame).is_err() {
                    return;
                }
            }
            ReplyAction::ReplyTruncated(reply) => {
                // Send half of the real reply, then cut the connection:
                // the peer sees a mid-frame EOF, never a valid frame.
                let frame = encode_frame_traced(&reply, echo);
                let _ = stream.write_all(&frame[..frame.len() / 2]);
                return;
            }
            ReplyAction::ShutdownAfter(reply) => {
                // process_request already set the shutdown flag; the
                // nonblocking accept loop sees it at its next poll, so
                // no throwaway wake-up connection is needed.
                let _ = write_message_traced(&mut stream, &reply, echo);
                return;
            }
        }
        record_stage(shared, trace, ctx.root, Stage::ReplyWrite, opc, NOTE_NONE, write_started.elapsed());
    }
}

/// Opcode of [`Message::StripData`] — the zero-copy reply path builds
/// its frame without constructing the message value.
pub(crate) const STRIP_DATA_OPCODE: u8 = 0x15;

/// What a connection core must do with one request's outcome. Both
/// engines run requests through [`process_request`] and translate the
/// action to their own write path, so fault-injection wire effects and
/// metrics are engine-independent.
pub(crate) enum ReplyAction {
    /// Write the reply frame and keep serving.
    Reply(Message),
    /// Write a [`Message::StripData`] reply whose payload is these
    /// store bytes — the zero-copy fast path for `GetStrip`.
    ReplyStrip(Bytes),
    /// Write the reply frame with its final CRC byte flipped
    /// (injected [`FaultAction::CorruptCrc`]), then keep serving.
    ReplyCorrupt(Message),
    /// Write only the first half of the reply frame, then close the
    /// connection (injected [`FaultAction::DropMidFrame`]).
    ReplyTruncated(Message),
    /// Write the reply, then set the daemon-wide shutdown flag and
    /// close the connection (the request was [`Message::Shutdown`]).
    ShutdownAfter(Message),
}

/// The engine-independent request core: metrics, trace events, fault
/// injection, deadline enforcement, dispatch. `trace` must already be
/// filtered by the peer's negotiated capabilities; `deadline` is the
/// absolute expiry derived from the frame's budget field at decode
/// time (`None` for legacy clients — never enforced).
pub(crate) fn process_request(
    shared: &Shared,
    class: ConnClass,
    msg: Message,
    trace: Option<u64>,
    deadline: Option<Instant>,
    ctx: RequestCtx,
) -> ReplyAction {
    let class_label = match class {
        ConnClass::Client => "client",
        ConnClass::Server => "server",
    };
    let started = Instant::now();
    let op = msg.op_name();
    let opcode = msg.opcode();
    let opc = op_class(&msg);
    shared.metrics.counter("dasd_requests_total", &[("op", op), ("class", class_label)]).inc();
    if das_obs::enabled(Level::Trace) {
        event(
            Level::Trace,
            "dasd",
            "request",
            &[
                ("server", shared.id.0.to_string()),
                ("op", op.to_string()),
                ("trace", trace.map(|t| format!("{t:#018x}")).unwrap_or_else(|| "-".into())),
            ],
        );
    }
    let is_shutdown = matches!(msg, Message::Shutdown);
    // A request whose propagated budget already expired (typically:
    // while queued behind an overload) is shed before any work — the
    // client gave up on it, so serving it would burn capacity on an
    // answer nobody reads. Typed and transient: the retry policy
    // backs off and retries with a fresh budget.
    if let Some(d) = deadline {
        if Instant::now() >= d && !shed_exempt(&msg) {
            shared.metrics.counter("dasd_requests_shed_total", &[("reason", "deadline")]).inc();
            // The root span that would have been a Dispatch becomes a
            // Shed annotated with why the request died — `das trace`
            // of a timed-out request shows where it was killed.
            finish_root(shared, trace, ctx, Stage::Shed, opc, NOTE_SHED_DEADLINE, started);
            return ReplyAction::Reply(err(
                ErrorCode::Overloaded,
                "request shed: deadline budget expired before execution",
            ));
        }
    }
    // Consult the fault plan before answering. Shutdown is exempt
    // so a chaos harness can always tear its cluster down.
    let fault = if is_shutdown {
        None
    } else {
        shared.fault.decide(FaultPoint::Request { class, opcode })
    };
    if let Some(action) = fault {
        event(
            Level::Debug,
            "dasd",
            "injecting fault",
            &[
                ("server", shared.id.0.to_string()),
                ("op", op.to_string()),
                ("action", format!("{action:?}")),
            ],
        );
        shared.metrics.counter("dasd_faults_injected_total", &[("op", op)]).inc();
    }
    match fault {
        Some(FaultAction::Retryable) => {
            return ReplyAction::Reply(err(ErrorCode::Retryable, "injected fault: try again"));
        }
        Some(FaultAction::Delay { millis }) => {
            std::thread::sleep(Duration::from_millis(millis));
        }
        Some(FaultAction::DropMidFrame) => {
            let reply = dispatch(shared, msg, trace, deadline, ctx);
            finish_root(shared, trace, ctx, Stage::Dispatch, opc, NOTE_NONE, started);
            return ReplyAction::ReplyTruncated(reply);
        }
        Some(FaultAction::CorruptCrc) => {
            let reply = dispatch(shared, msg, trace, deadline, ctx);
            finish_root(shared, trace, ctx, Stage::Dispatch, opc, NOTE_NONE, started);
            return ReplyAction::ReplyCorrupt(reply);
        }
        Some(FaultAction::RefuseAccept) | None => {}
    }
    // GetStrip takes the zero-copy path: the strip's bytes leave the
    // store as a refcounted handle and become the reply frame's body
    // segment without an intermediate payload `Vec`.
    if let Message::GetStrip { file, strip } = msg {
        let read_started = Instant::now();
        let action = match get_strip_bytes(shared, file, strip) {
            Ok(bytes) => ReplyAction::ReplyStrip(bytes),
            Err(e) => {
                log_request_failure(shared, op, &e);
                ReplyAction::Reply(e)
            }
        };
        record_stage(shared, trace, ctx.root, Stage::LocalRead, opc, NOTE_NONE, read_started.elapsed());
        shared
            .metrics
            .histogram("dasd_request_duration_us", &[("op", op)])
            .observe(started.elapsed().as_micros() as u64);
        finish_root(shared, trace, ctx, Stage::Dispatch, opc, NOTE_NONE, started);
        return action;
    }
    let reply = dispatch(shared, msg, trace, deadline, ctx);
    shared
        .metrics
        .histogram("dasd_request_duration_us", &[("op", op)])
        .observe(started.elapsed().as_micros() as u64);
    finish_root(shared, trace, ctx, Stage::Dispatch, opc, NOTE_NONE, started);
    log_request_failure(shared, op, &reply);
    if is_shutdown {
        shared.shutdown.store(true, Ordering::SeqCst);
        ReplyAction::ShutdownAfter(reply)
    } else {
        ReplyAction::Reply(reply)
    }
}

/// Emit the debug event for a request that produced a typed error.
fn log_request_failure(shared: &Shared, op: &str, reply: &Message) {
    if let Message::Error { code, message } = reply {
        event(
            Level::Debug,
            "dasd",
            "request failed",
            &[
                ("server", shared.id.0.to_string()),
                ("op", op.to_string()),
                ("code", format!("{code:?}")),
                ("detail", message.clone()),
            ],
        );
    }
}

fn dispatch(
    shared: &Shared,
    msg: Message,
    trace: Option<u64>,
    deadline: Option<Instant>,
    ctx: RequestCtx,
) -> Message {
    match msg {
        Message::Hello { .. } => err(ErrorCode::BadRequest, "duplicate Hello"),
        Message::Ping => Message::Pong,
        Message::Shutdown => Message::ShutdownOk,
        Message::Stats => Message::StatsResp(shared.stats.snapshot()),
        Message::ResetStats => {
            shared.stats.reset();
            Message::ResetStatsOk
        }
        Message::MetricsDump => {
            // Mirror the live per-class byte counters into gauges so
            // one dump carries the whole picture.
            let s = shared.stats.snapshot();
            for (class, dir, v) in [
                ("client", "in", s.client_in),
                ("client", "out", s.client_out),
                ("server", "in", s.server_in),
                ("server", "out", s.server_out),
            ] {
                shared
                    .metrics
                    .gauge("dasd_wire_bytes", &[("class", class), ("dir", dir)])
                    .set(v as i64);
            }
            shared.metrics.gauge("dasd_server_id", &[]).set(i64::from(shared.id.0));
            // Live handler occupancy — the thread engine's equivalent
            // of the event loop's fair-queue depth gauge.
            shared
                .metrics
                .gauge("dasd_active_requests", &[])
                .set(shared.active.load(Ordering::SeqCst) as i64);
            for (peer, open) in shared.peers.breaker_states() {
                shared
                    .metrics
                    .gauge("dasd_peer_breaker_open", &[("peer", &peer.to_string())])
                    .set(i64::from(open));
            }
            // Flight-recorder occupancy and the event throttle's
            // suppression count, mirrored the same way: one dump
            // carries the whole picture.
            shared.metrics.gauge("dasd_spans_retained", &[]).set(shared.spans.len() as i64);
            shared
                .metrics
                .gauge("dasd_spans_evicted_total", &[])
                .set(shared.spans.evicted() as i64);
            shared
                .metrics
                .gauge("das_obs_events_suppressed_total", &[])
                .set(das_obs::suppressed_total() as i64);
            Message::MetricsText { text: shared.metrics.encode() }
        }
        Message::TraceDump { trace: wanted } => {
            // Caps-gated: a peer that did not negotiate CAP_SPANS
            // asked for an RPC it was never offered — typed refusal,
            // not silence, so a misconfigured client fails loudly.
            if !ctx.spans_ok {
                return err(ErrorCode::BadRequest, "TraceDump requires CAP_SPANS");
            }
            Message::TraceDumpResp {
                spans: das_obs::encode_spans(&shared.spans.dump_trace(wanted)),
            }
        }
        Message::SlowLog { per_class } => {
            if !ctx.spans_ok {
                return err(ErrorCode::BadRequest, "SlowLog requires CAP_SPANS");
            }
            Message::SlowLogResp {
                spans: das_obs::encode_spans(&shared.spans.slowest(per_class as usize)),
            }
        }
        Message::CreateFile { name, file_len, strip_size, policy, servers } => {
            if servers != shared.peers.cluster_size() {
                return err(
                    ErrorCode::BadRequest,
                    format!("layout over {servers} servers in a {}-server cluster", shared.peers.cluster_size()),
                );
            }
            if strip_size == 0 {
                return err(ErrorCode::BadRequest, "zero strip size");
            }
            let mut inner = lock(&shared.inner);
            if let Some(&id) = inner.by_name.get(&name) {
                // A client that lost our reply (dropped connection)
                // will retry the create: answer the retry with the
                // existing id when the parameters match exactly, so
                // CreateFile is idempotent under retransmission.
                let meta = &inner.files[id.0 as usize];
                if meta.len == file_len
                    && meta.spec == StripeSpec::new(strip_size as usize)
                    && meta.layout == Layout::new(policy, servers)
                {
                    return Message::CreateFileOk { file: id.0 };
                }
                return err(ErrorCode::DuplicateName, format!("file {name:?} already exists"));
            }
            let id = FileId(inner.files.len() as u32);
            inner.by_name.insert(name.clone(), id);
            inner.files.push(FileMeta {
                id,
                name,
                len: file_len,
                spec: StripeSpec::new(strip_size as usize),
                layout: Layout::new(policy, servers),
            });
            Message::CreateFileOk { file: id.0 }
        }
        Message::Lookup { name } => {
            let inner = lock(&shared.inner);
            match inner.by_name.get(&name) {
                Some(id) => {
                    let meta = &inner.files[id.0 as usize];
                    Message::LookupOk { file: id.0, dist: dist_of(meta) }
                }
                None => err(ErrorCode::NoSuchFile, format!("no file named {name:?}")),
            }
        }
        Message::GetDistribution { file } => {
            let inner = lock(&shared.inner);
            match inner.meta(file) {
                Ok(meta) => Message::DistributionResp { dist: dist_of(meta) },
                Err(e) => e,
            }
        }
        Message::PutStrip { file, strip, payload } => {
            let mut inner = lock(&shared.inner);
            let (id, expected, holds, primary) = match inner.meta(file) {
                Ok(meta) => {
                    if strip >= meta.strip_count() {
                        return err(
                            ErrorCode::OutOfBounds,
                            format!("strip {strip} of {}-strip file", meta.strip_count()),
                        );
                    }
                    let sid = StripId(strip);
                    (
                        meta.id,
                        meta.spec.strip_len(sid, meta.len),
                        meta.layout.holds(shared.id, sid),
                        meta.layout.primary(sid) == shared.id,
                    )
                }
                Err(e) => return e,
            };
            if !holds {
                return err(
                    ErrorCode::StripNotLocal,
                    format!("server {} does not hold strip {strip}", shared.id.0),
                );
            }
            if payload.len() != expected {
                return err(
                    ErrorCode::StripLengthMismatch,
                    format!("strip {strip} wants {expected} bytes, got {}", payload.len()),
                );
            }
            inner.store.store(id, StripId(strip), Bytes::from(payload), primary);
            Message::PutStripOk
        }
        Message::GetStrip { file, strip } => match get_strip_bytes(shared, file, strip) {
            // Live GetStrips short-circuit in process_request and ship
            // zero-copy as ReplyStrip; this owned-payload arm only
            // runs under fault injection (corrupt/truncated replies).
            // das-lint: allow(DA801) fault-injection fallback; live reads use the ReplyStrip fast path
            Ok(data) => Message::StripData { payload: data.to_vec() },
            Err(e) => e,
        },
        Message::RedistPrepare { file, policy } => {
            redist_prepare(shared, file, policy, trace, deadline, ctx)
        }
        Message::RedistCommit { file, policy } => redist_commit(shared, file, policy),
        Message::Execute { file, out_file, kernel, img_width, element_size, successive, force } => {
            execute(
                shared,
                ExecuteArgs { file, out_file, kernel: &kernel, img_width, element_size, successive, force },
                trace,
                deadline,
                ctx,
            )
        }
        // Response opcodes arriving as requests.
        other => err(ErrorCode::BadRequest, format!("unexpected opcode 0x{:02x}", other.opcode())),
    }
}

/// Read one locally-held strip as a refcounted handle — the zero-copy
/// source for `GetStrip` replies (both engines write the returned
/// [`Bytes`] straight into the frame's body segment). Errors come
/// back as the typed reply message.
pub(crate) fn get_strip_bytes(shared: &Shared, file: u32, strip: u64) -> Result<Bytes, Message> {
    let inner = lock(&shared.inner);
    let meta = inner.meta(file)?;
    if strip >= meta.strip_count() {
        return Err(err(
            ErrorCode::OutOfBounds,
            format!("strip {strip} of {}-strip file", meta.strip_count()),
        ));
    }
    match inner.store.read_strip(meta.id, StripId(strip)) {
        Ok(data) => Ok(data),
        Err(_) => Err(err(
            ErrorCode::StripNotLocal,
            format!("server {} does not hold strip {strip}", shared.id.0),
        )),
    }
}

fn dist_of(meta: &FileMeta) -> das_pfs::DistributionInfo {
    das_pfs::DistributionInfo {
        strip_size: meta.spec.strip_size,
        servers: meta.layout.servers,
        policy: meta.layout.policy,
        file_len: meta.len,
    }
}

/// Phase one of redistribution: pull every strip this server gains
/// under `policy` from its current primary, into the staging area.
/// The live layout is untouched until every server has prepared.
fn redist_prepare(
    shared: &Shared,
    file: u32,
    policy: das_pfs::LayoutPolicy,
    trace: Option<u64>,
    deadline: Option<Instant>,
    ctx: RequestCtx,
) -> Message {
    let (id, old_layout, spec, len, strip_count) = {
        let inner = lock(&shared.inner);
        match inner.meta(file) {
            Ok(m) => (m.id, m.layout, m.spec, m.len, m.strip_count()),
            Err(e) => return e,
        }
    };
    let new_layout = Layout::new(policy, old_layout.servers);
    let mut wanted = Vec::new();
    {
        let inner = lock(&shared.inner);
        for s in 0..strip_count {
            let sid = StripId(s);
            if new_layout.holds(shared.id, sid) && !inner.store.holds(id, sid) {
                wanted.push(sid);
            }
        }
    }
    let mut staged = Vec::with_capacity(wanted.len());
    let mut fetched_bytes = 0u64;
    for sid in wanted {
        // Pull from the old primary, failing over to old-layout
        // replicas; an unreachable strip is a *transient* failure (the
        // holder may come back), so the client may retry or abandon
        // the redistribution and degrade.
        let holders: Vec<u32> =
            old_layout.placement(sid).holders().iter().map(|h| h.0).collect();
        let payload = match shared.peers.get_strip_failover_spanned(
            &holders,
            file,
            sid.0,
            trace,
            deadline,
            ctx.root,
            OpClass::Redist,
        ) {
            Ok((p, _)) => p,
            Err(e) => {
                return err(
                    ErrorCode::Retryable,
                    format!("strip {} unreachable on holders {holders:?}: {e}", sid.0),
                )
            }
        };
        if payload.len() != spec.strip_len(sid, len) {
            return err(
                ErrorCode::StripLengthMismatch,
                format!("peer returned {} bytes for strip {}", payload.len(), sid.0),
            );
        }
        fetched_bytes += payload.len() as u64;
        staged.push((sid, Bytes::from(payload)));
    }
    let fetched_strips = staged.len() as u64;
    lock(&shared.inner).staged.insert(file, staged);
    Message::RedistPrepareOk { fetched_strips, fetched_bytes }
}

/// Phase two: adopt staged strips, re-flag survivors, evict strips no
/// longer held, and swap the file's layout.
fn redist_commit(shared: &Shared, file: u32, policy: das_pfs::LayoutPolicy) -> Message {
    let mut inner = lock(&shared.inner);
    let (id, servers, strip_count) = match inner.meta(file) {
        Ok(m) => (m.id, m.layout.servers, m.strip_count()),
        Err(e) => return e,
    };
    let new_layout = Layout::new(policy, servers);
    let staged = inner.staged.remove(&file).unwrap_or_default();
    for s in 0..strip_count {
        let sid = StripId(s);
        if !inner.store.holds(id, sid) {
            continue;
        }
        if new_layout.holds(shared.id, sid) {
            // Survivor: refresh the primary flag under the new layout.
            let data = match inner.store.read_strip(id, sid) {
                Ok(d) => d,
                Err(e) => {
                    return err(
                        ErrorCode::Internal,
                        format!("held strip {} unreadable during commit: {e:?}", sid.0),
                    )
                }
            };
            inner.store.store(id, sid, data, new_layout.primary(sid) == shared.id);
        } else {
            inner.store.evict(id, sid);
        }
    }
    for (sid, data) in staged {
        inner.store.store(id, sid, data, new_layout.primary(sid) == shared.id);
    }
    inner.files[file as usize].layout = new_layout;
    Message::RedistCommitOk
}

/// Arguments of one [`Message::Execute`] request.
struct ExecuteArgs<'a> {
    file: u32,
    out_file: u32,
    kernel: &'a str,
    img_width: u64,
    element_size: u32,
    successive: bool,
    force: bool,
}

/// The active-storage execution path (paper Fig. 3 right branch).
fn execute(
    shared: &Shared,
    args: ExecuteArgs<'_>,
    trace: Option<u64>,
    deadline: Option<Instant>,
    ctx: RequestCtx,
) -> Message {
    let ExecuteArgs { file, out_file, kernel: kernel_name, img_width, element_size, successive, force } =
        args;
    if element_size != 4 {
        return err(ErrorCode::BadRequest, format!("unsupported element size {element_size}"));
    }
    // Snapshot metadata and local strips under the lock; everything
    // network-bound below runs without it.
    let read_started = Instant::now();
    let (out_id, layout, spec, len, strip_count, local) = {
        let inner = lock(&shared.inner);
        let meta = match inner.meta(file) {
            Ok(m) => m,
            Err(e) => return e,
        };
        let out = match inner.meta(out_file) {
            Ok(m) => m,
            Err(e) => return e,
        };
        if out.len != meta.len || out.spec.strip_size != meta.spec.strip_size {
            return err(ErrorCode::GeometryMismatch, "output geometry differs from input".to_string());
        }
        if out.layout != meta.layout {
            return err(ErrorCode::BadRequest, "output layout differs from input".to_string());
        }
        let mut local = Vec::new();
        for sid in inner.store.all_strips(meta.id) {
            match inner.store.read_strip(meta.id, sid) {
                Ok(data) => local.push((sid, data)),
                Err(e) => {
                    return err(
                        ErrorCode::Internal,
                        format!("held strip {} unreadable: {e:?}", sid.0),
                    )
                }
            }
        }
        (out.id, meta.layout, meta.spec, meta.len, meta.strip_count(), local)
    };
    record_stage(shared, trace, ctx.root, Stage::LocalRead, OpClass::Exec, NOTE_NONE, read_started.elapsed());

    let kernel = match kernel_by_name(kernel_name) {
        Some(k) => k,
        None => return err(ErrorCode::UnknownOperator, format!("no kernel {kernel_name:?}")),
    };
    let row_bytes = img_width * u64::from(element_size);
    if row_bytes == 0 || len % row_bytes != 0 {
        return err(
            ErrorCode::GeometryMismatch,
            format!("{len}-byte file is not whole {img_width}-element rows"),
        );
    }

    // The decision workflow. A forced offload (the NAS scheme's
    // "always offload" behaviour) skips the *gate* but still runs the
    // predictor, so predicted-vs-measured stays queryable for every
    // outcome. Each daemon sees the same metadata, so its predicted_*
    // counters carry the full cluster-wide Eqs. 1–13 prediction per
    // Execute; the measured dep-fetch counters carry only this
    // daemon's share (sum them across the fleet to compare).
    let dist = das_pfs::DistributionInfo {
        strip_size: spec.strip_size,
        servers: layout.servers,
        policy: layout.policy,
        file_len: len,
    };
    let opts = RequestOptions { img_width, element_size: 4, successive, ..Default::default() };
    let decision = shared.as_client.decide_from_distribution(dist, kernel_name, &opts);
    if let Ok(d) = &decision {
        let p = d.predicted();
        shared.metrics.counter("dasd_predicted_dep_fetches_total", &[]).add(p.nas.fetches);
        shared.metrics.counter("dasd_predicted_dep_fetch_bytes_total", &[]).add(p.nas.bytes);
        shared
            .metrics
            .counter("dasd_predicted_ts_client_bytes_total", &[])
            .add(p.ts_client_bytes);
    }
    let outcome = if force {
        "nas"
    } else {
        match decision {
            Ok(Decision::Offload { .. }) => "das",
            Ok(Decision::Reject { reason, predicted }) => {
                shared.metrics.counter("dasd_decisions_total", &[("outcome", "ts")]).inc();
                event(
                    Level::Info,
                    "dasd",
                    "offload rejected",
                    &[
                        ("server", shared.id.0.to_string()),
                        ("kernel", kernel_name.to_string()),
                        ("reason", format!("{reason:?}")),
                        ("predicted_fetch_bytes", predicted.nas.bytes.to_string()),
                        ("ts_client_bytes", predicted.ts_client_bytes.to_string()),
                    ],
                );
                return err(
                    ErrorCode::FallbackToNormalIo,
                    format!(
                        "{reason:?}: strip fetches would move {} bytes vs {} as normal I/O",
                        predicted.nas.bytes, predicted.ts_client_bytes
                    ),
                );
            }
            Err(e) => return err(ErrorCode::BadRequest, e.to_string()),
        }
    };
    shared.metrics.counter("dasd_decisions_total", &[("outcome", outcome)]).inc();
    event(
        Level::Info,
        "dasd",
        "offload accepted",
        &[
            ("server", shared.id.0.to_string()),
            ("kernel", kernel_name.to_string()),
            ("outcome", outcome.to_string()),
            ("trace", trace.map(|t| format!("{t:#018x}")).unwrap_or_else(|| "-".into())),
        ],
    );

    let height = len / row_bytes;
    let elems_per_strip = spec.strip_size as u64 / 4;
    let total_elements = len / 4;
    let offsets = kernel.dependence_offsets(img_width);
    let local_ids: std::collections::HashSet<u64> = local.iter().map(|(s, _)| s.0).collect();
    let tasks = layout.primary_strips(shared.id, strip_count);

    let mut dep_fetches = 0u64;
    let mut dep_fetch_bytes = 0u64;
    // Kernel and assemble time accumulate across tasks and record as
    // one aggregate span each; dependence fetches record one
    // `peer_fetch` span per fetch (the walk, not each holder try).
    let mut kernel_time = Duration::ZERO;
    let mut assemble_time = Duration::ZERO;
    for &t in &tasks {
        // Fresh assembly per task: remote dependence strips are
        // re-fetched for every task that needs them, with no cache —
        // the synchronous per-strip traffic the predictor prices.
        let mut asm = StripAssembly::new(img_width, height, spec.strip_size, format!("dasd{}", shared.id.0));
        for (sid, data) in &local {
            asm.insert(*sid, data.clone());
        }
        for u in dependent_strips(t.0, &offsets, elems_per_strip, total_elements) {
            if local_ids.contains(&u) {
                continue;
            }
            // Dependence fetch with replica failover: try the strip's
            // primary, then each replica holder. Only when *every*
            // holder is unreachable does the execution fail — typed
            // and transient, so the client retries or degrades the
            // scheme instead of hanging.
            // Dependence fetches carry the request's remaining budget
            // downstream, so a peer that is itself overloaded can shed
            // work this execution no longer has time to use.
            let holders: Vec<u32> =
                layout.placement(StripId(u)).holders().iter().map(|h| h.0).collect();
            let payload = match shared.peers.get_strip_failover_spanned(
                &holders,
                file,
                u,
                trace,
                deadline,
                ctx.root,
                OpClass::Exec,
            ) {
                Ok((p, _)) => p,
                Err(e) => {
                    return err(
                        ErrorCode::Retryable,
                        format!("dependence strip {u} unreachable on holders {holders:?}: {e}"),
                    )
                }
            };
            // A short (or long) strip from a confused peer must fail
            // typed here: accepted into the assembly it would panic
            // the first out-of-range element read.
            if payload.len() != spec.strip_len(StripId(u), len) {
                return err(
                    ErrorCode::StripLengthMismatch,
                    format!(
                        "peer returned {} bytes for dependence strip {u}, wanted {}",
                        payload.len(),
                        spec.strip_len(StripId(u), len)
                    ),
                );
            }
            dep_fetches += 1;
            dep_fetch_bytes += payload.len() as u64;
            asm.insert(StripId(u), Bytes::from(payload));
        }

        let start = t.0 * elems_per_strip;
        let end = (start + elems_per_strip).min(total_elements);
        let mut out = vec![0f32; (end - start) as usize];
        let kernel_started = Instant::now();
        kernel.process_range(&asm, start, &mut out);
        kernel_time += kernel_started.elapsed();
        let assemble_started = Instant::now();
        let mut out_bytes = Vec::with_capacity(out.len() * 4);
        for v in &out {
            out_bytes.extend_from_slice(&v.to_le_bytes());
        }

        let out_b = Bytes::from(out_bytes);
        lock(&shared.inner).store.store(out_id, t, out_b.clone(), true);
        for replica in layout.replicas(t) {
            if replica == shared.id {
                continue;
            }
            // Replica forwarding is already retried by the peer table;
            // a holder that stays down just means this output strip is
            // stored at reduced redundancy — the primary copy above is
            // the authoritative one, so the execution still succeeds.
            // PutStrip owns its payload Vec, so each forward costs one
            // copy of the strip — only on the (rare) replica path.
            if shared
                .peers
                .put_strip_traced(replica.0, out_file, t.0, out_b.to_vec(), trace)
                .is_err()
            {
                shared.metrics.counter("dasd_replica_forward_failures_total", &[]).inc();
            }
        }
        assemble_time += assemble_started.elapsed();
    }
    if !tasks.is_empty() {
        record_stage(shared, trace, ctx.root, Stage::Kernel, OpClass::Exec, NOTE_NONE, kernel_time);
        record_stage(shared, trace, ctx.root, Stage::Assemble, OpClass::Exec, NOTE_NONE, assemble_time);
    }

    shared.metrics.counter("dasd_strips_computed_total", &[]).add(tasks.len() as u64);
    shared.metrics.counter("dasd_dep_fetches_total", &[]).add(dep_fetches);
    shared.metrics.counter("dasd_dep_fetch_bytes_total", &[]).add(dep_fetch_bytes);
    Message::ExecuteOk { strips_computed: tasks.len() as u64, dep_fetches, dep_fetch_bytes }
}
