//! The [`crate::server::Engine::EventLoop`] connection core: a
//! sharded nonblocking event loop with request pipelining.
//!
//! Layout of one daemon under this engine:
//!
//! * **one accept thread** — the shared nonblocking accept loop
//!   (fault injection, shutdown polling) dealing sockets round-robin
//!   to the shards;
//! * **a few shard threads** — each owns a set of nonblocking
//!   sockets. A shard's loop drains newly-assigned sockets, reads
//!   whatever bytes are available into each connection's incremental
//!   [`FrameBuffer`], decodes complete frames, and submits them to
//!   the worker pool. Completed replies come back on the shard's
//!   `done` queue and are written with vectored (scatter/gather)
//!   writes, partial-write state kept per connection;
//! * **a worker pool** — runs `process_request` (fault injection,
//!   metrics, dispatch — identical to the thread-per-connection
//!   engine) off the shard threads, so a slow `Execute` full of peer
//!   fetches never stalls other connections.
//!
//! **Fair queueing & admission control.** Decoded requests reach the
//! worker pool through a `FairQueue`: per-connection FIFOs drained
//! by weighted deficit round-robin, where a heavy request (`Execute`,
//! redistribution) costs its connection several turns — so one
//! connection spamming kernel executions cannot starve another's
//! pipelined striped gets. The queue's total depth is bounded by the
//! daemon's `max_backlog`; a request that arrives with the backlog
//! full is **shed** from the shard thread itself with the typed,
//! transient [`ErrorCode::Overloaded`] — the client's shared retry
//! policy backs off and retries, so overload degrades throughput
//! instead of latency-spiraling or wedging sockets. A request whose
//! propagated deadline budget (frame `FLAG_DEADLINE` field) expires
//! while queued is shed the same way when a worker finally picks it
//! up — see `process_request`. Control-plane requests (`Shutdown`,
//! `Ping`, stats/metrics reads) are exempt from shedding: an operator
//! must be able to watch and stop an overloaded daemon.
//!
//! **Pipelining.** Because frames are decoded incrementally and
//! handled off-thread, one connection may have many requests in
//! flight (up to `MAX_INFLIGHT`, 128); replies are written in completion
//! order, not arrival order, and a pipelined client matches them by
//! the echoed trace id (see `docs/PROTOCOL.md` § Pipelining). A
//! legacy serial client never has more than one outstanding request,
//! so it observes exactly the old engine's behavior, bit for bit.
//!
//! No `epoll`/`kqueue`: the workspace forbids `unsafe` and carries no
//! FFI dependency, so readiness is discovered by polling nonblocking
//! sockets — hot (yielding) for `SPIN_PASSES` passes after the last
//! progress, then backing off to a bounded sleep
//! (`IDLE_SLEEP_MIN`..`IDLE_SLEEP_MAX`). For the strip sizes and
//! fleet scales this repo benchmarks, syscall overhead is dwarfed by
//! payload copies — which this engine removes instead.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::codec::{
    encode_frame_traced, raw_frame_parts, CountingStream, FrameBuffer, IoVecCursor,
};
use crate::proto::{ErrorCode, Message, Role, CAP_SPANS, CAP_TRACE, LOCAL_CAPS};
use crate::server::{
    accept_loop, finish_root, lock, op_class, process_request, record_stage, shed_exempt,
    ConnClass, ReplyAction, RequestCtx, Shared, STRIP_DATA_OPCODE,
};
use das_obs::{OpClass, Stage, NOTE_NONE, NOTE_SHED_BACKLOG};

/// Maximum requests in flight (submitted to workers, reply not yet
/// written) on one connection. When a pipelined client exceeds it the
/// shard stops reading that socket — TCP backpressure, not an error.
pub const MAX_INFLIGHT: usize = 128;

/// Passes with no progress a shard spends yielding (hot polling)
/// before it starts sleeping. Keeps per-hop latency in the
/// microseconds while requests are flowing — the poll loop's answer
/// to not having `epoll` — at the price of some idle CPU in a short
/// window after each burst.
const SPIN_PASSES: u32 = 256;

/// First sleep after the spin window; doubles (in effect: scales with
/// the idle streak) up to [`IDLE_SLEEP_MAX`].
const IDLE_SLEEP_MIN: Duration = Duration::from_micros(50);

/// Sleep cap for a fully idle shard — bounds both worst-case wakeup
/// latency and idle CPU.
const IDLE_SLEEP_MAX: Duration = Duration::from_millis(1);

/// How long a shard keeps flushing in-flight replies after the
/// shutdown flag goes up before abandoning unwritable connections.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Read chunk size per socket per pass.
const READ_CHUNK: usize = 64 * 1024;

/// Attribution context one reply carries from the worker back to the
/// owning shard: the reply-write span closes only when the socket has
/// accepted the frame's last byte, which happens on the shard thread.
struct ReplyTag {
    trace: Option<u64>,
    /// Root span id of the request this reply answers.
    root: u32,
    op: OpClass,
    /// When the finished reply entered the outbound queue — the span
    /// covers queued-for-write plus the write itself.
    queued: Instant,
}

/// One fully-formed reply, queued from a worker back to the owning
/// shard. Kept as segments so a strip reply's body stays a refcounted
/// [`Bytes`] handle until the socket write itself.
struct Outbound {
    head: Vec<u8>,
    body: Bytes,
    /// CRC tail, inline — at most 4 bytes, so carrying it by value
    /// costs no per-reply allocation.
    tail: [u8; 4],
    tail_len: u8,
    /// Close the connection once (whatever exists of) this reply is
    /// flushed — mid-frame fault cuts and post-`Shutdown` closes.
    close_after: bool,
    /// Reply-write attribution (`None` for handshake/shed replies
    /// minted on the shard thread itself).
    tag: Option<ReplyTag>,
}

impl Outbound {
    fn frame(frame: Vec<u8>, close_after: bool) -> Outbound {
        Outbound {
            head: frame,
            body: Bytes::new(),
            tail: [0; 4],
            tail_len: 0,
            close_after,
            tag: None,
        }
    }
}

/// A request handed to the worker pool.
struct Job {
    shard: usize,
    conn: u64,
    class: ConnClass,
    msg: Message,
    /// Trace id, already filtered by the peer's negotiated caps; the
    /// reply echoes it.
    trace: Option<u64>,
    /// Absolute deadline derived from the frame's budget field at
    /// decode time, so time spent queued counts against the budget.
    deadline: Option<Instant>,
    /// When the decoded request entered the fair queue — the
    /// queue-wait span measures from here to worker pickup.
    enqueued: Instant,
    /// Span/caps context reserved at decode time, so queue-wait and
    /// decode spans link to the same root the dispatch span closes.
    ctx: RequestCtx,
}

/// How many round-robin turns dispatching this request costs its
/// connection. Kernel executions and redistribution phases do orders
/// of magnitude more work than a strip get, so they pay more turns —
/// the "weight" in the weighted deficit round-robin.
fn job_weight(msg: &Message) -> u32 {
    match msg {
        Message::Execute { .. } | Message::RedistPrepare { .. } | Message::RedistCommit { .. } => 8,
        _ => 1,
    }
}

/// One connection's pending requests inside the fair queue. Each
/// entry carries the weight its dispatch will charge, so the
/// scheduler is generic over what a "job" is.
struct ConnQueue<J> {
    jobs: VecDeque<(u32, J)>,
    /// Turns this connection still owes for an earlier heavy
    /// dispatch; it is skipped until the debt is paid down.
    debt: u32,
}

/// Scheduler state behind the `sched` lock.
struct SchedState<J> {
    /// Pending requests per connection. Invariant: a connection id is
    /// a key here iff it appears exactly once in `order`.
    queues: HashMap<u64, ConnQueue<J>>,
    /// Round-robin order over connections with pending requests.
    order: VecDeque<u64>,
    /// Total requests queued, across all connections.
    len: usize,
    /// Shard threads still running; when the last one exits, idle
    /// workers are released.
    shards_live: usize,
}

/// The shard→worker request scheduler: per-connection FIFOs drained
/// by weighted deficit round-robin, with a bounded total backlog.
/// Generic over the job payload so the scheduling discipline can be
/// driven deterministically in tests with plain ids.
struct FairQueue<J> {
    /// Scheduler lock — "sched" in the crate's lock hierarchy: taken
    /// after a shard's `inbox`, never while a `done` queue is held.
    sched: Mutex<SchedState<J>>,
    ready: Condvar,
    /// Admission bound: a non-exempt request arriving with this many
    /// already queued is shed with [`ErrorCode::Overloaded`].
    max_backlog: usize,
    /// Live queue depth (`dasd_worker_queue_depth`).
    depth: Arc<das_obs::Gauge>,
    /// Requests shed at admission (`dasd_requests_shed_total{reason="backlog"}`).
    shed: Arc<das_obs::Counter>,
}

impl<J> FairQueue<J> {
    fn new(max_backlog: usize, n_shards: usize, metrics: &das_obs::Registry) -> FairQueue<J> {
        let depth = metrics.gauge("dasd_worker_queue_depth", &[]);
        depth.set(0); // registered up front so dumps always carry it
        FairQueue {
            sched: Mutex::new(SchedState {
                queues: HashMap::new(),
                order: VecDeque::new(),
                len: 0,
                shards_live: n_shards,
            }),
            ready: Condvar::new(),
            max_backlog,
            depth,
            shed: metrics.counter("dasd_requests_shed_total", &[("reason", "backlog")]),
        }
    }

    /// Enqueue one decoded request, or hand it back when the backlog
    /// is full (the caller sheds it with a typed reply). Exempt
    /// (control-plane) requests are always admitted.
    fn enqueue(&self, conn: u64, weight: u32, exempt: bool, job: J) -> Result<(), J> {
        let mut s = lock(&self.sched);
        if s.len >= self.max_backlog && !exempt {
            drop(s);
            self.shed.inc();
            return Err(job);
        }
        match s.queues.entry(conn) {
            std::collections::hash_map::Entry::Occupied(e) => {
                e.into_mut().jobs.push_back((weight, job));
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(ConnQueue { jobs: VecDeque::from([(weight, job)]), debt: 0 });
                s.order.push_back(conn);
            }
        }
        s.len += 1;
        self.depth.set(s.len as i64);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue the next request by weighted deficit round-robin, or
    /// `None` once every shard has exited and the queue is drained.
    /// Each turn either dispatches one request or pays down one unit
    /// of a connection's debt; total debt is bounded, so the walk
    /// terminates.
    fn dequeue(&self) -> Option<J> {
        let mut s = lock(&self.sched);
        loop {
            while s.len > 0 {
                let Some(conn) = s.order.pop_front() else { break };
                let Some(q) = s.queues.get_mut(&conn) else { continue };
                if q.debt > 0 {
                    q.debt -= 1;
                    s.order.push_back(conn);
                    continue;
                }
                let Some((weight, job)) = q.jobs.pop_front() else {
                    s.queues.remove(&conn);
                    continue;
                };
                q.debt = weight.saturating_sub(1);
                let drained = q.jobs.is_empty() && q.debt == 0;
                if drained {
                    s.queues.remove(&conn);
                } else {
                    s.order.push_back(conn);
                }
                s.len -= 1;
                self.depth.set(s.len as i64);
                return Some(job);
            }
            if s.shards_live == 0 {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// One shard thread exited; the last one out releases the idle
    /// workers so the pool can drain and join.
    fn shard_done(&self) {
        let mut s = lock(&self.sched);
        s.shards_live = s.shards_live.saturating_sub(1);
        let release = s.shards_live == 0;
        drop(s);
        if release {
            self.ready.notify_all();
        }
    }
}

/// Worker→shard reply queues plus the new-connection inboxes, shared
/// by every thread of the engine.
struct ShardQueues {
    /// Sockets accepted but not yet adopted by the shard thread.
    inbox: Vec<Mutex<Vec<TcpStream>>>,
    /// Replies completed by workers, keyed by connection id.
    done: Vec<Mutex<Vec<(u64, Outbound)>>>,
}

/// Start the event-loop engine's threads: accept, shards, workers.
pub(crate) fn spawn_event_loop(
    shared: Arc<Shared>,
    listener: TcpListener,
    pool: usize,
    max_backlog: usize,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    listener.set_nonblocking(true)?;
    let n_shards = pool.div_ceil(4).clamp(1, 4);
    let queues = Arc::new(ShardQueues {
        inbox: (0..n_shards).map(|_| Mutex::new(Vec::new())).collect(),
        done: (0..n_shards).map(|_| Mutex::new(Vec::new())).collect(),
    });

    let fair: Arc<FairQueue<Job>> = Arc::new(FairQueue::new(max_backlog, n_shards, &shared.metrics));
    let mut threads = Vec::with_capacity(pool + n_shards + 1);
    for _ in 0..pool {
        let fair = Arc::clone(&fair);
        let shared = Arc::clone(&shared);
        let queues = Arc::clone(&queues);
        threads.push(std::thread::spawn(move || {
            while let Some(job) = fair.dequeue() {
                run_job(&shared, &queues, job);
            }
        }));
    }
    for shard_id in 0..n_shards {
        let shared = Arc::clone(&shared);
        let queues = Arc::clone(&queues);
        let fair = Arc::clone(&fair);
        threads.push(std::thread::spawn(move || {
            // Decrement the live-shard count even if the loop panics,
            // so idle workers are never stranded on the condvar.
            struct Live(Arc<FairQueue<Job>>);
            impl Drop for Live {
                fn drop(&mut self) {
                    self.0.shard_done();
                }
            }
            let live = Live(Arc::clone(&fair));
            shard_loop(&shared, &queues, shard_id, &fair);
            drop(live);
        }));
    }
    {
        let shared = Arc::clone(&shared);
        let queues = Arc::clone(&queues);
        threads.push(std::thread::spawn(move || {
            let mut next = 0usize;
            accept_loop(&shared, &listener, |s| {
                let shard = next % queues.inbox.len();
                next = next.wrapping_add(1);
                lock(&queues.inbox[shard]).push(s);
                true
            });
        }));
    }
    Ok(threads)
}

/// Run one request on a worker thread and queue its reply to the
/// owning shard.
fn run_job(shared: &Shared, queues: &ShardQueues, job: Job) {
    let echo = job.trace;
    let opc = op_class(&job.msg);
    // Queue-wait closes here: the gap between the shard enqueuing the
    // decoded request and this worker picking it up.
    record_stage(shared, job.trace, job.ctx.root, Stage::QueueWait, opc, NOTE_NONE, job.enqueued.elapsed());
    let mut out = match process_request(shared, job.class, job.msg, job.trace, job.deadline, job.ctx) {
        ReplyAction::Reply(reply) => Outbound::frame(encode_frame_traced(&reply, echo), false),
        ReplyAction::ReplyStrip(bytes) => {
            // Zero-copy: head and CRC are computed over the store's
            // bytes in place; the body segment shares the allocation
            // and the 4-byte CRC tail rides inline.
            let prefix = (bytes.len() as u32).to_le_bytes();
            let parts = raw_frame_parts(STRIP_DATA_OPCODE, &prefix, &bytes, echo);
            let (head, tail) = (parts.head, parts.tail);
            Outbound { head, body: bytes, tail, tail_len: 4, close_after: false, tag: None }
        }
        ReplyAction::ReplyCorrupt(reply) => {
            let mut frame = encode_frame_traced(&reply, echo);
            let last = frame.len() - 1;
            frame[last] ^= 0xFF;
            Outbound::frame(frame, false)
        }
        ReplyAction::ReplyTruncated(reply) => {
            let frame = encode_frame_traced(&reply, echo);
            let half = frame.len() / 2;
            // das-lint: allow(DA801) fault-injection path: deliberately ships a cut frame
            Outbound::frame(frame[..half].to_vec(), true)
        }
        ReplyAction::ShutdownAfter(reply) => {
            // process_request already raised the shutdown flag; the
            // shard flushes this reply before it exits.
            Outbound::frame(encode_frame_traced(&reply, echo), true)
        }
    };
    out.tag = Some(ReplyTag { trace: job.trace, root: job.ctx.root, op: opc, queued: Instant::now() });
    lock(&queues.done[job.shard]).push((job.conn, out));
}

/// Connection state owned by one shard.
struct Conn {
    id: u64,
    stream: CountingStream<TcpStream>,
    fb: FrameBuffer,
    /// `None` until the peer's `Hello` arrives and fixes the class.
    class: Option<ConnClass>,
    peer_traced: bool,
    /// Peer negotiated `CAP_SPANS`: span-dump RPCs are admissible.
    peer_spans: bool,
    /// Requests submitted to workers whose replies have not finished
    /// writing.
    inflight: usize,
    out: VecDeque<(IoVecCursor, bool, Option<ReplyTag>)>,
    /// Peer closed its write side; serve what's in flight, then drop.
    read_closed: bool,
    /// Close once the outbound queue drains.
    close_after_flush: bool,
    /// Transport failure or protocol violation: drop immediately.
    dead: bool,
}

impl Conn {
    fn new(id: u64, stream: TcpStream) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            id,
            stream: CountingStream::new(stream),
            fb: FrameBuffer::new(),
            class: None,
            peer_traced: false,
            peer_spans: false,
            inflight: 0,
            out: VecDeque::new(),
            read_closed: false,
            close_after_flush: false,
            dead: false,
        })
    }

    fn queue(&mut self, out: Outbound) {
        if out.close_after {
            self.close_after_flush = true;
        }
        self.out.push_back((
            IoVecCursor::new(out.head, out.body, &out.tail[..out.tail_len as usize]),
            out.close_after,
            out.tag,
        ));
    }

    /// True when nothing remains to serve and the socket can go.
    fn finished(&self) -> bool {
        self.dead
            || ((self.read_closed || self.close_after_flush)
                && self.inflight == 0
                && self.out.is_empty())
    }
}

/// The event loop proper: adopt new sockets, pump reads/decodes into
/// the worker pool, pump completed replies out, poll shutdown.
fn shard_loop(
    shared: &Shared,
    queues: &ShardQueues,
    shard_id: usize,
    fair: &FairQueue<Job>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_conn_id = (shard_id as u64) << 48;
    let mut drain_started: Option<Instant> = None;
    let mut idle_passes = 0u32;
    let inflight_gauge =
        shared.metrics.gauge("dasd_shard_inflight", &[("shard", &shard_id.to_string())]);
    inflight_gauge.set(0);
    let mut last_inflight = 0i64;
    loop {
        let mut progressed = false;

        // Adopt newly accepted sockets (unless already draining).
        let fresh = std::mem::take(&mut *lock(&queues.inbox[shard_id]));
        for s in fresh {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            next_conn_id += 1;
            if let Ok(c) = Conn::new(next_conn_id, s) {
                conns.push(c);
                progressed = true;
            }
        }

        // Route completed replies to their connections.
        let done = std::mem::take(&mut *lock(&queues.done[shard_id]));
        for (conn_id, out) in done {
            if let Some(c) = conns.iter_mut().find(|c| c.id == conn_id) {
                c.inflight -= 1;
                c.queue(out);
                progressed = true;
            }
        }

        let draining = shared.shutdown.load(Ordering::SeqCst);
        if draining && drain_started.is_none() {
            drain_started = Some(Instant::now());
        }

        for c in conns.iter_mut() {
            progressed |= pump_write(shared, c);
            if !draining && !c.dead && !c.close_after_flush {
                progressed |= pump_read(shared, c, shard_id, fair);
            }
        }
        conns.retain(|c| !c.finished());

        let inflight: i64 = conns.iter().map(|c| c.inflight as i64).sum();
        if inflight != last_inflight {
            inflight_gauge.set(inflight);
            last_inflight = inflight;
        }

        if draining {
            let expired =
                drain_started.map(|t| t.elapsed() > DRAIN_DEADLINE).unwrap_or(false);
            let idle = conns.iter().all(|c| c.inflight == 0 && c.out.is_empty());
            if idle || expired {
                return;
            }
        }
        if progressed {
            idle_passes = 0;
        } else {
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes <= SPIN_PASSES {
                std::thread::yield_now();
            } else {
                let step = (idle_passes - SPIN_PASSES).min(20);
                // das-lint: allow(DA803) bounded idle backoff — no epoll, so an idle shard must sleep
                std::thread::sleep((IDLE_SLEEP_MIN * step).min(IDLE_SLEEP_MAX));
            }
        }
    }
}

/// Flush as much outbound data as the socket accepts. Returns whether
/// any bytes moved. A reply's `reply_write` span closes when its last
/// byte is accepted — covering queued-for-write time plus the write
/// itself, which is exactly the tail a saturated socket adds.
fn pump_write(shared: &Shared, c: &mut Conn) -> bool {
    let mut progressed = false;
    while let Some((cursor, _, _)) = c.out.front_mut() {
        match cursor.write_some(&mut c.stream) {
            Ok(0) => break, // would block
            Ok(_) => {
                progressed = true;
                if cursor.is_done() {
                    let (_, close_after, tag) = match c.out.pop_front() {
                        Some(f) => f,
                        None => break,
                    };
                    if let Some(tag) = tag {
                        record_stage(
                            shared,
                            tag.trace,
                            tag.root,
                            Stage::ReplyWrite,
                            tag.op,
                            NOTE_NONE,
                            tag.queued.elapsed(),
                        );
                    }
                    if close_after {
                        c.dead = true;
                        return true;
                    }
                }
            }
            Err(_) => {
                c.dead = true;
                return true;
            }
        }
    }
    progressed
}

/// Read available bytes, decode complete frames, and hand requests to
/// the worker pool. Returns whether any progress happened.
fn pump_read(
    shared: &Shared,
    c: &mut Conn,
    shard_id: usize,
    fair: &FairQueue<Job>,
) -> bool {
    let mut progressed = false;
    let mut buf = [0u8; READ_CHUNK];
    // Read until the socket would block or backpressure applies.
    while !c.read_closed && c.inflight < MAX_INFLIGHT {
        match c.stream.read(&mut buf) {
            Ok(0) => {
                c.read_closed = true;
                progressed = true;
            }
            Ok(n) => {
                c.fb.extend(&buf[..n]);
                progressed = true;
                if n < buf.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                c.dead = true;
                return true;
            }
        }
    }
    // Decode complete frames up to the in-flight cap.
    while c.inflight < MAX_INFLIGHT && !c.dead {
        let frame = match c.fb.next_frame_ex() {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(_) => {
                c.dead = true;
                return true;
            }
        };
        progressed = true;
        match c.class {
            None => handle_hello(shared, c, frame.msg),
            Some(class) => {
                let trace = if c.peer_traced { frame.trace } else { None };
                // The budget starts burning now: queueing delay counts
                // against it, which is exactly what lets an overloaded
                // worker pool shed requests nobody is waiting for.
                let deadline = frame
                    .budget_ms
                    .map(|ms| Instant::now() + Duration::from_millis(u64::from(ms)));
                let opc = op_class(&frame.msg);
                let ctx = RequestCtx::new(shared, c.peer_spans, trace);
                record_stage(
                    shared,
                    trace,
                    ctx.root,
                    Stage::Decode,
                    opc,
                    NOTE_NONE,
                    Duration::from_micros(frame.decode_us),
                );
                let job = Job {
                    shard: shard_id,
                    conn: c.id,
                    class,
                    msg: frame.msg,
                    trace,
                    deadline,
                    enqueued: Instant::now(),
                    ctx,
                };
                let (weight, exempt) = (job_weight(&job.msg), shed_exempt(&job.msg));
                match fair.enqueue(c.id, weight, exempt, job) {
                    Ok(()) => c.inflight += 1,
                    Err(job) => {
                        // Backlog full: shed from the shard thread with
                        // the typed transient error — the one reply
                        // that must not wait on the worker pool. The
                        // root span dies here, annotated with why.
                        finish_root(shared, trace, ctx, Stage::Shed, opc, NOTE_SHED_BACKLOG, job.enqueued);
                        let reply = Message::Error {
                            code: ErrorCode::Overloaded,
                            message: "request shed: worker backlog full".into(),
                        };
                        c.queue(Outbound::frame(encode_frame_traced(&reply, trace), false));
                    }
                }
            }
        }
    }
    progressed
}

/// First frame of a connection: fix the traffic class, register the
/// byte counters, answer `HelloOk` — mirrors the blocking engine.
fn handle_hello(shared: &Shared, c: &mut Conn, msg: Message) {
    let (class, caps) = match msg {
        Message::Hello { role: Role::Client, caps, .. } => (ConnClass::Client, caps),
        Message::Hello { role: Role::Server, caps, .. } => (ConnClass::Server, caps),
        _ => {
            let reply = Message::Error {
                code: ErrorCode::BadRequest,
                message: "expected Hello".into(),
            };
            c.queue(Outbound::frame(encode_frame_traced(&reply, None), true));
            return;
        }
    };
    c.class = Some(class);
    c.peer_traced = caps & CAP_TRACE != 0;
    c.peer_spans = caps & CAP_SPANS != 0;
    shared.stats.register(class, c.stream.bytes_in(), c.stream.bytes_out());
    let reply = Message::HelloOk { server_id: shared.id.0, caps: LOCAL_CAPS };
    c.queue(Outbound::frame(encode_frame_traced(&reply, None), false));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model of the weighted deficit round-robin scheduler:
    /// the same discipline written as straight-line single-threaded
    /// code, with no lock, condvar, metrics, or shard accounting. The
    /// real `FairQueue` must agree with it on every admission and
    /// dispatch decision under a seeded interleaving.
    struct RefModel {
        queues: HashMap<u64, (VecDeque<(u32, u32)>, u32)>,
        order: VecDeque<u64>,
        len: usize,
        max_backlog: usize,
    }

    impl RefModel {
        fn new(max_backlog: usize) -> RefModel {
            RefModel { queues: HashMap::new(), order: VecDeque::new(), len: 0, max_backlog }
        }

        fn enqueue(&mut self, conn: u64, weight: u32, exempt: bool, id: u32) -> bool {
            if self.len >= self.max_backlog && !exempt {
                return false;
            }
            let fresh = !self.queues.contains_key(&conn);
            self.queues.entry(conn).or_insert_with(|| (VecDeque::new(), 0)).0.push_back((weight, id));
            if fresh {
                self.order.push_back(conn);
            }
            self.len += 1;
            true
        }

        fn dequeue(&mut self) -> Option<u32> {
            while self.len > 0 {
                let conn = self.order.pop_front()?;
                let Some(q) = self.queues.get_mut(&conn) else { continue };
                if q.1 > 0 {
                    q.1 -= 1;
                    self.order.push_back(conn);
                    continue;
                }
                let Some((weight, id)) = q.0.pop_front() else {
                    self.queues.remove(&conn);
                    continue;
                };
                q.1 = weight.saturating_sub(1);
                if q.0.is_empty() && q.1 == 0 {
                    self.queues.remove(&conn);
                } else {
                    self.order.push_back(conn);
                }
                self.len -= 1;
                return Some(id);
            }
            None
        }
    }

    fn queue_len(fair: &FairQueue<u32>) -> usize {
        lock(&fair.sched).len
    }

    /// A heavy dispatch (weight 8) must yield the floor to the other
    /// connection for eight turns — its natural rotation slot plus
    /// seven debt skips — before the heavy connection is served
    /// again: H L×8 H L×8 … exactly.
    #[test]
    fn drr_weights_interleave_heavy_and_light() {
        let metrics = das_obs::Registry::new();
        let fair: FairQueue<u32> = FairQueue::new(1024, 1, &metrics);
        // Conn 1: four heavy jobs (ids 0..4). Conn 2: 32 light (100..).
        for id in 0..4u32 {
            fair.enqueue(1, 8, false, id).unwrap();
        }
        for id in 100..132u32 {
            fair.enqueue(2, 1, false, id).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..36 {
            got.push(fair.dequeue().expect("queue is non-empty"));
        }
        let mut want = Vec::new();
        for h in 0..4u32 {
            want.push(h);
            for l in 0..8u32 {
                want.push(100 + h * 8 + l);
            }
        }
        assert_eq!(got, want, "weighted DRR order drifted from the 1-heavy-then-8-light pattern");
    }

    /// Seeded pseudo-random interleaving: four simulated shards
    /// enqueue (with occasional exempt control-plane jobs) and a
    /// worker dequeues, in an order driven by a deterministic LCG.
    /// Every admission/shed decision and every dispatched id must
    /// match the reference model, and the backlog bound must hold for
    /// non-exempt admissions throughout.
    #[test]
    fn seeded_interleaving_matches_reference_model() {
        const MAX_BACKLOG: usize = 12;
        let metrics = das_obs::Registry::new();
        let fair: FairQueue<u32> = FairQueue::new(MAX_BACKLOG, 1, &metrics);
        let mut model = RefModel::new(MAX_BACKLOG);

        let mut seed = 0xDA51D_u64;
        let mut lcg = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };

        let mut next_id = 0u32;
        let mut in_flight_ids: Vec<u32> = Vec::new();
        let mut shed_count = 0usize;
        for step in 0..20_000 {
            let r = lcg();
            if r % 3 != 0 {
                // One of four shards submits for one of its two conns.
                let shard = u64::from(r % 4);
                let conn = shard * 2 + u64::from((r >> 8) % 2);
                let weight = if (r >> 16) % 5 == 0 { 8 } else { 1 };
                let exempt = (r >> 24) % 13 == 0;
                let id = next_id;
                next_id += 1;
                let admitted = fair.enqueue(conn, weight, exempt, id).is_ok();
                let model_admitted = model.enqueue(conn, weight, exempt, id);
                assert_eq!(
                    admitted, model_admitted,
                    "admission decision diverged at step {step} (id {id}, exempt {exempt})"
                );
                if admitted {
                    in_flight_ids.push(id);
                } else {
                    shed_count += 1;
                    assert!(
                        !exempt,
                        "an exempt control-plane job was shed at step {step}"
                    );
                }
                if !exempt && admitted {
                    assert!(
                        model.len <= MAX_BACKLOG,
                        "non-exempt admission pushed the backlog past the bound at step {step}"
                    );
                }
            } else if model.len > 0 {
                let got = fair.dequeue().expect("model says the queue is non-empty");
                let want = model.dequeue().expect("model len > 0");
                assert_eq!(got, want, "dispatch order diverged at step {step}");
                in_flight_ids.retain(|&i| i != got);
            }
            assert_eq!(queue_len(&fair), model.len, "queue length diverged at step {step}");
        }
        // Drain: every admitted job comes out, in model order.
        while model.len > 0 {
            let got = fair.dequeue().expect("drain");
            let want = model.dequeue().expect("drain");
            assert_eq!(got, want, "dispatch order diverged during drain");
            in_flight_ids.retain(|&i| i != got);
        }
        assert!(in_flight_ids.is_empty(), "admitted jobs lost: {in_flight_ids:?}");
        assert!(shed_count > 0, "the seed never exercised the shed path");
        assert_eq!(queue_len(&fair), 0);
    }
}
