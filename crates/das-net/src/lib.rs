//! # das-net — the networked active-storage service
//!
//! Everything else in this workspace exercises the DAS architecture
//! *in process*: `das-pfs` strips live in one address space and the
//! "network" is a simulator. This crate puts the same architecture on
//! real sockets, the deployment shape of the paper's prototype (an
//! active-storage service embedded in the storage servers of a
//! parallel file system):
//!
//! * [`server`] — the **`dasd`** daemon, one per storage server. It
//!   stores that server's strips (reusing [`das_pfs::StorageServer`]),
//!   answers the client data plane, and executes offloaded kernels,
//!   fetching dependent strips from peer daemons exactly as the
//!   in-process NAS/DAS schemes (and the bandwidth predictor) model.
//! * [`client`] — the **`das`** client library: striped gather/scatter
//!   reads and writes, the redistribution driver, and
//!   [`client::run_net_scheme`] running the paper's TS / NAS / DAS
//!   evaluation schemes end-to-end over TCP.
//! * [`proto`] + [`codec`] — the versioned, length-prefixed binary
//!   protocol (documented in `docs/PROTOCOL.md`), hand-rolled over
//!   `std::net` with zero external dependencies.
//! * [`fault`] + [`retry`] — deterministic fault injection for `dasd`
//!   and the shared retry/timeout/backoff policy that lets both sides
//!   of the wire survive it: replica failover on reads, tolerant
//!   replicated writes, and graceful DAS → NAS → normal-I/O scheme
//!   degradation (see `docs/PROTOCOL.md`, "Failure semantics").
//!
//! Both binaries — `dasd` and `das` — are thin CLI wrappers over
//! these modules.
//!
//! Every daemon counts actual wire bytes per connection class
//! (client↔server vs server↔server), so integration tests can check
//! the *measured* traffic of each scheme against the analytic
//! predictions of `das-core` — the strongest end-to-end validation of
//! the paper's bandwidth model this repo has.


pub mod client;
pub mod codec;
pub mod engine;
pub mod fault;
pub mod hedge;
pub mod peer;
pub mod pipeline;
pub mod proto;
pub mod retry;
pub mod server;

pub use client::{
    run_net_scheme, run_net_scheme_opts, DasCluster, ExecSummary, NetRunReport, NetScheme,
};
pub use codec::{
    encode_frame, encode_frame_opts, encode_frame_traced, frame_parts_opts, frame_parts_traced,
    read_frame, read_frame_ex, read_message, write_frame_vectored, write_message,
    write_message_opts, write_message_traced, CountingStream, Frame, FrameBuffer, FrameParts,
    NetError, FLAG_CRC, FLAG_DEADLINE, FLAG_TRACE, KNOWN_FLAGS,
};
pub use fault::{FaultAction, FaultClass, FaultPlan, FaultPoint, FaultRule};
pub use hedge::{Ewma, LoadTracker};
pub use pipeline::PipeClient;
pub use proto::{
    ErrorCode, Message, Role, WireStats, CAP_CRC, CAP_DEADLINE, CAP_TRACE, KNOWN_OPCODES,
    LOCAL_CAPS, MAX_PAYLOAD, VERSION,
};
pub use retry::RetryPolicy;
pub use server::{spawn, ConnClass, DasdConfig, DasdHandle, Engine, StatsRegistry};
