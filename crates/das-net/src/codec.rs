//! Frame I/O over byte streams, plus the byte-counting stream wrapper
//! that backs the per-class traffic accounting.
//!
//! Frame layout (12-byte header, all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "DASN"
//!      4     1  protocol version (1)
//!      5     1  opcode
//!      6     2  flags (bit 0: CRC32 trailer; bit 1: trace id; rest 0)
//!      8     4  payload length
//!     12     8  trace id (only when flag bit 1 is set)
//!      …     n  payload (see proto module)
//!      …     4  CRC32 of header[+trace]+payload (when flag bit 0 set)
//! ```
//!
//! Writers in this build always emit the CRC trailer; readers verify
//! it when present and still accept trailer-less frames (flags 0) so
//! a capability-negotiated downgrade stays possible. The checksum
//! covers the *header as well as* the payload, so a flipped opcode or
//! length byte is caught, not just corrupted payload bytes.
//!
//! The optional 8-byte **trace id** (little-endian, between header
//! and payload; *not* counted by the payload-length field) correlates
//! every hop of one logical request across the cluster. It is only
//! sent to peers that advertised `CAP_TRACE` in their
//! `Hello`/`HelloOk`, so frames to a legacy peer stay bit-identical
//! to protocol version 1 without the field.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::proto::{DecodeError, ErrorCode, Message, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};

/// Frame-header flag bit 0: a 4-byte CRC32 trailer follows the
/// payload, covering the header and payload bytes.
pub const FLAG_CRC: u16 = 0x0001;

/// Frame-header flag bit 1: an 8-byte little-endian trace id sits
/// between the header and the payload (and is covered by the CRC
/// trailer when both flags are set). Only sent to peers that
/// advertised [`crate::proto::CAP_TRACE`].
pub const FLAG_TRACE: u16 = 0x0002;

/// Every assigned frame-flag bit. A frame setting any other bit is
/// rejected before its payload is read; the protocol-conformance
/// pass sweeps the full 4-combination space of these bits (and probes
/// unassigned ones) against [`read_frame`].
pub const KNOWN_FLAGS: u16 = FLAG_CRC | FLAG_TRACE;

/// Consecutive mid-frame read timeouts tolerated before the reader
/// gives up and surfaces a typed timeout error. A peer that started a
/// frame and then went silent must not hang the reader forever — the
/// connection is torn down and redialed instead.
const MIDFRAME_TIMEOUT_BUDGET: u32 = 8;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3) over `chunks`, in order.
pub fn crc32(chunks: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for chunk in chunks {
        for &b in *chunk {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// Anything that can go wrong talking to a peer.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level failure.
    Io(io::Error),
    /// The byte stream violated the framing or encoding rules.
    Protocol(String),
    /// The remote replied with a typed [`Message::Error`].
    Remote {
        /// Error code sent by the peer.
        code: ErrorCode,
        /// Detail message sent by the peer.
        message: String,
    },
    /// The remote replied with a message the caller did not expect.
    Unexpected {
        /// Opcode of the surprising reply.
        opcode: u8,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Remote { code, message } => {
                write!(f, "remote error {code:?}: {message}")
            }
            NetError::Unexpected { opcode } => {
                write!(f, "unexpected reply opcode 0x{opcode:02x}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl NetError {
    /// Transport-level failure: the connection is in an unknown or
    /// dead state and must be discarded before any retry.
    pub fn is_transport(&self) -> bool {
        matches!(self, NetError::Io(_) | NetError::Protocol(_))
    }

    /// Whether retrying the same request (possibly over a fresh
    /// connection) may succeed: any transport failure, or a typed
    /// [`ErrorCode::Retryable`] from the remote.
    pub fn is_transient(&self) -> bool {
        match self {
            NetError::Remote { code, .. } => code.is_transient(),
            NetError::Io(_) | NetError::Protocol(_) => true,
            NetError::Unexpected { .. } => false,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        NetError::Protocol(e.to_string())
    }
}

/// Serialize `msg` into a complete frame (header + payload + CRC32
/// trailer). Exposed so the fault injector can truncate or corrupt a
/// frame deliberately; normal senders use [`write_message`].
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    encode_frame_traced(msg, None)
}

/// Like [`encode_frame`], optionally carrying a trace id (sets
/// `FLAG_TRACE` and inserts the 8-byte field between header and
/// payload). Callers must only pass `Some` when the receiving peer
/// advertised [`crate::proto::CAP_TRACE`].
pub fn encode_frame_traced(msg: &Message, trace: Option<u64>) -> Vec<u8> {
    let payload = msg.encode_payload();
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let flags = FLAG_CRC | if trace.is_some() { FLAG_TRACE } else { 0 };
    let mut frame = Vec::with_capacity(HEADER_LEN + 8 + payload.len() + 4);
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(msg.opcode());
    frame.extend_from_slice(&flags.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    if let Some(id) = trace {
        frame.extend_from_slice(&id.to_le_bytes());
    }
    frame.extend_from_slice(&payload);
    let crc = crc32(&[&frame]);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Serialize `msg` as one frame onto `w` and flush.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Serialize `msg` with an optional trace id onto `w` and flush.
pub fn write_message_traced<W: Write>(
    w: &mut W,
    msg: &Message,
    trace: Option<u64>,
) -> io::Result<()> {
    w.write_all(&encode_frame_traced(msg, trace))?;
    w.flush()
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Fill `buf` from `r`, tolerating up to `MIDFRAME_TIMEOUT_BUDGET`
/// consecutive read timeouts (the counter resets on progress). An EOF
/// surfaces as `Ok(read_so_far)`; exhausting the timeout budget is a
/// typed `TimedOut` error — a peer that goes silent mid-frame must
/// never hang the reader.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<usize, NetError> {
    let mut got = 0;
    let mut stalls = 0u32;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(got),
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MIDFRAME_TIMEOUT_BUDGET {
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("peer stalled mid-{what} ({got} of {} bytes)", buf.len()),
                    )));
                }
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(got)
}

/// Read exactly one frame from `r`, verify its checksum when present,
/// and decode it. An EOF *before the first header byte* surfaces as
/// `Ok(None)` (clean connection close); an EOF mid-frame is an error.
///
/// Sockets with a read timeout: a timeout while *waiting* for a frame
/// (no header byte read yet) surfaces as the I/O error so the caller
/// can poll a shutdown flag and retry; a timeout *mid-frame* retries
/// a bounded number of times (giving up there desynchronizes the
/// stream, so the caller must discard the connection — which every
/// caller in this crate now does).
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<Message>, NetError> {
    Ok(read_frame(r)?.map(|(msg, _trace)| msg))
}

/// Like [`read_message`], also surfacing the frame's trace id when
/// the sender attached one (`FLAG_TRACE`).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(Message, Option<u64>)>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    // The first header byte decides clean-close vs mid-frame cut, and
    // a timeout before it belongs to the caller (shutdown polling).
    let mut got = 0;
    while got == 0 {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(n) => got = n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    if read_full(r, &mut header[1..], "header")? != HEADER_LEN - 1 {
        return Err(NetError::Protocol("connection closed mid-header".into()));
    }
    if header[0..4] != MAGIC {
        return Err(NetError::Protocol("bad frame magic".into()));
    }
    if header[4] != VERSION {
        return Err(NetError::Protocol(format!(
            "unsupported protocol version {} (want {VERSION})",
            header[4]
        )));
    }
    let opcode = header[5];
    let flags = u16::from_le_bytes(header[6..8].try_into().unwrap()); // das-lint: allow(DA401) infallible 2-byte slice → array
    if flags & !KNOWN_FLAGS != 0 {
        return Err(NetError::Protocol(format!("unknown flags 0x{flags:04x}")));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize; // das-lint: allow(DA401) infallible 4-byte slice → array
    if len > MAX_PAYLOAD {
        return Err(NetError::Protocol(format!(
            "payload length {len} exceeds cap {MAX_PAYLOAD}"
        )));
    }
    let mut trace_field = [0u8; 8];
    let trace = if flags & FLAG_TRACE != 0 {
        if read_full(r, &mut trace_field, "trace id")? != 8 {
            return Err(NetError::Protocol("connection closed mid-trace".into()));
        }
        Some(u64::from_le_bytes(trace_field))
    } else {
        None
    };
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload, "payload")? != len {
        return Err(NetError::Protocol("connection closed mid-payload".into()));
    }
    if flags & FLAG_CRC != 0 {
        let mut trailer = [0u8; 4];
        if read_full(r, &mut trailer, "checksum")? != 4 {
            return Err(NetError::Protocol("connection closed mid-checksum".into()));
        }
        let wanted = u32::from_le_bytes(trailer);
        let actual = if trace.is_some() {
            crc32(&[&header, &trace_field, &payload])
        } else {
            crc32(&[&header, &payload])
        };
        if wanted != actual {
            return Err(NetError::Protocol(format!(
                "frame checksum mismatch: wire {wanted:#010x}, computed {actual:#010x}"
            )));
        }
    }
    Ok(Some((Message::decode(opcode, &payload)?, trace)))
}

/// A `Read + Write` wrapper that counts every byte crossing it, in
/// both directions, into shared atomic counters. The daemon registers
/// each connection's counters under its traffic class (client↔server
/// or server↔server) once the peer's [`Message::Hello`] arrives —
/// the counters are shared, so bytes that crossed before
/// classification are not lost.
#[derive(Debug)]
pub struct CountingStream<S> {
    inner: S,
    bytes_in: Arc<AtomicU64>,
    bytes_out: Arc<AtomicU64>,
}

impl<S> CountingStream<S> {
    /// Wrap `inner` with fresh zeroed counters.
    pub fn new(inner: S) -> Self {
        CountingStream {
            inner,
            bytes_in: Arc::new(AtomicU64::new(0)),
            bytes_out: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Handle on the receive counter.
    pub fn bytes_in(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.bytes_in)
    }

    /// Handle on the send counter.
    pub fn bytes_out(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.bytes_out)
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_and_counting() {
        let msg = Message::PutStrip { file: 2, strip: 5, payload: vec![9; 100] };
        let mut sink = CountingStream::new(Cursor::new(Vec::new()));
        write_message(&mut sink, &msg).unwrap();
        let written = sink.bytes_out().load(Ordering::Relaxed);
        let buf = sink.get_ref().get_ref().clone();
        assert_eq!(written as usize, buf.len());
        // Header + payload + 4-byte CRC trailer.
        assert_eq!(buf.len(), HEADER_LEN + msg.encode_payload().len() + 4);

        let mut src = CountingStream::new(Cursor::new(buf));
        let back = read_message(&mut src).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(src.bytes_in().load(Ordering::Relaxed), written);
        // Clean EOF after the frame.
        assert!(read_message(&mut src).unwrap().is_none());
    }

    #[test]
    fn corrupt_magic_is_a_protocol_error() {
        let msg = Message::Ping;
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        buf[0] = b'X';
        match read_message(&mut Cursor::new(buf)) {
            Err(NetError::Protocol(m)) => assert!(m.contains("magic")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let msg = Message::PutStrip { file: 1, strip: 2, payload: vec![7; 64] };
        let mut buf = encode_frame(&msg);
        buf[HEADER_LEN + 20] ^= 0x40; // flip one payload bit
        match read_message(&mut Cursor::new(buf)) {
            Err(NetError::Protocol(m)) => assert!(m.contains("checksum"), "got {m:?}"),
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_opcode_fails_the_checksum() {
        // The CRC covers the header too: a flipped opcode must not
        // decode as a different (well-formed) message.
        let mut buf = encode_frame(&Message::Ping);
        buf[5] ^= 0x01; // Ping (0x50) -> Pong (0x51), payloads identical
        assert!(read_message(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn crc_less_frames_are_still_accepted() {
        // Flags 0, no trailer — the negotiated-downgrade format.
        let msg = Message::GetStrip { file: 3, strip: 9 };
        let payload = msg.encode_payload();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(msg.opcode());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        let back = read_message(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn traced_frames_roundtrip_and_legacy_readers_differ_only_by_flag() {
        let msg = Message::GetStrip { file: 3, strip: 9 };
        let frame = encode_frame_traced(&msg, Some(0xDEAD_BEEF_CAFE_F00D));
        let (back, trace) = read_frame(&mut Cursor::new(frame)).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(trace, Some(0xDEAD_BEEF_CAFE_F00D));
        // Untraced frames read identically through both entry points
        // and report no trace id.
        let plain = encode_frame(&msg);
        assert_eq!(plain, encode_frame_traced(&msg, None));
        let (back, trace) = read_frame(&mut Cursor::new(plain)).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(trace, None);
    }

    #[test]
    fn corrupted_trace_id_fails_the_checksum() {
        let mut frame = encode_frame_traced(&Message::Ping, Some(42));
        frame[HEADER_LEN] ^= 0x01; // first byte of the trace field
        assert!(read_frame(&mut Cursor::new(frame)).is_err());
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b""]), 0);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(0x50);
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        match read_message(&mut Cursor::new(buf)) {
            Err(NetError::Protocol(m)) => assert!(m.contains("cap")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }
}
