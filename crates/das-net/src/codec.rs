//! Frame I/O over byte streams, plus the byte-counting stream wrapper
//! that backs the per-class traffic accounting.
//!
//! Frame layout (12-byte header, all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "DASN"
//!      4     1  protocol version (1)
//!      5     1  opcode
//!      6     2  flags (reserved, must be 0)
//!      8     4  payload length
//!     12     n  payload (see proto module)
//! ```

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::proto::{DecodeError, ErrorCode, Message, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};

/// Anything that can go wrong talking to a peer.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level failure.
    Io(io::Error),
    /// The byte stream violated the framing or encoding rules.
    Protocol(String),
    /// The remote replied with a typed [`Message::Error`].
    Remote {
        /// Error code sent by the peer.
        code: ErrorCode,
        /// Detail message sent by the peer.
        message: String,
    },
    /// The remote replied with a message the caller did not expect.
    Unexpected {
        /// Opcode of the surprising reply.
        opcode: u8,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Remote { code, message } => {
                write!(f, "remote error {code:?}: {message}")
            }
            NetError::Unexpected { opcode } => {
                write!(f, "unexpected reply opcode 0x{opcode:02x}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        NetError::Protocol(e.to_string())
    }
}

/// Serialize `msg` as one frame onto `w` and flush.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    let payload = msg.encode_payload();
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(msg.opcode());
    frame.extend_from_slice(&0u16.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    w.write_all(&frame)?;
    w.flush()
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Read exactly one frame from `r` and decode it. An EOF *before the
/// first header byte* surfaces as `Ok(None)` (clean connection close);
/// an EOF mid-frame is an error.
///
/// Sockets with a read timeout: a timeout while *waiting* for a frame
/// (no header byte read yet) surfaces as the I/O error so the caller
/// can poll a shutdown flag and retry; a timeout *mid-frame* retries
/// internally, since giving up there would desynchronize the stream.
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<Message>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(NetError::Protocol(format!(
                    "connection closed mid-header ({got} of {HEADER_LEN} bytes)"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && got > 0 => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    if header[0..4] != MAGIC {
        return Err(NetError::Protocol("bad frame magic".into()));
    }
    if header[4] != VERSION {
        return Err(NetError::Protocol(format!(
            "unsupported protocol version {} (want {VERSION})",
            header[4]
        )));
    }
    let opcode = header[5];
    let flags = u16::from_le_bytes(header[6..8].try_into().unwrap());
    if flags != 0 {
        return Err(NetError::Protocol(format!("nonzero flags 0x{flags:04x}")));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(NetError::Protocol(format!(
            "payload length {len} exceeds cap {MAX_PAYLOAD}"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0;
    while got < len {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(NetError::Protocol("connection closed mid-payload".into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(Some(Message::decode(opcode, &payload)?))
}

/// A `Read + Write` wrapper that counts every byte crossing it, in
/// both directions, into shared atomic counters. The daemon registers
/// each connection's counters under its traffic class (client↔server
/// or server↔server) once the peer's [`Message::Hello`] arrives —
/// the counters are shared, so bytes that crossed before
/// classification are not lost.
#[derive(Debug)]
pub struct CountingStream<S> {
    inner: S,
    bytes_in: Arc<AtomicU64>,
    bytes_out: Arc<AtomicU64>,
}

impl<S> CountingStream<S> {
    /// Wrap `inner` with fresh zeroed counters.
    pub fn new(inner: S) -> Self {
        CountingStream {
            inner,
            bytes_in: Arc::new(AtomicU64::new(0)),
            bytes_out: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Handle on the receive counter.
    pub fn bytes_in(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.bytes_in)
    }

    /// Handle on the send counter.
    pub fn bytes_out(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.bytes_out)
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_and_counting() {
        let msg = Message::PutStrip { file: 2, strip: 5, payload: vec![9; 100] };
        let mut sink = CountingStream::new(Cursor::new(Vec::new()));
        write_message(&mut sink, &msg).unwrap();
        let written = sink.bytes_out().load(Ordering::Relaxed);
        let buf = sink.get_ref().get_ref().clone();
        assert_eq!(written as usize, buf.len());
        assert_eq!(buf.len(), HEADER_LEN + msg.encode_payload().len());

        let mut src = CountingStream::new(Cursor::new(buf));
        let back = read_message(&mut src).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(src.bytes_in().load(Ordering::Relaxed), written);
        // Clean EOF after the frame.
        assert!(read_message(&mut src).unwrap().is_none());
    }

    #[test]
    fn corrupt_magic_is_a_protocol_error() {
        let msg = Message::Ping;
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        buf[0] = b'X';
        match read_message(&mut Cursor::new(buf)) {
            Err(NetError::Protocol(m)) => assert!(m.contains("magic")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(0x50);
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        match read_message(&mut Cursor::new(buf)) {
            Err(NetError::Protocol(m)) => assert!(m.contains("cap")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }
}
