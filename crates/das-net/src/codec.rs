//! Frame I/O over byte streams, plus the byte-counting stream wrapper
//! that backs the per-class traffic accounting.
//!
//! Frame layout (12-byte header, all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     4  magic "DASN"
//!      4     1  protocol version (1)
//!      5     1  opcode
//!      6     2  flags (bit 0: CRC32 trailer; bit 1: trace id;
//!               bit 2: deadline budget; rest 0)
//!      8     4  payload length
//!     12     8  trace id (only when flag bit 1 is set)
//!      …     4  deadline budget in ms (only when flag bit 2 is set)
//!      …     n  payload (see proto module)
//!      …     4  CRC32 of header[+trace][+budget]+payload (flag bit 0)
//! ```
//!
//! Writers in this build always emit the CRC trailer; readers verify
//! it when present and still accept trailer-less frames (flags 0) so
//! a capability-negotiated downgrade stays possible. The checksum
//! covers the *header as well as* the payload, so a flipped opcode or
//! length byte is caught, not just corrupted payload bytes.
//!
//! The optional 8-byte **trace id** (little-endian, between header
//! and payload; *not* counted by the payload-length field) correlates
//! every hop of one logical request across the cluster. It is only
//! sent to peers that advertised `CAP_TRACE` in their
//! `Hello`/`HelloOk`, so frames to a legacy peer stay bit-identical
//! to protocol version 1 without the field.
//!
//! The optional 4-byte **deadline budget** (little-endian
//! milliseconds, after the trace id when both are present; also not
//! counted by the payload-length field) is how much wall time the
//! sender is still willing to wait for this request. A server sheds
//! the request with a typed `Overloaded` error instead of running it
//! once the budget has expired, and forwards the *remaining* budget
//! on any dependence fetch it issues on the request's behalf. The
//! field is only sent to peers that advertised `CAP_DEADLINE` —
//! legacy peers see bit-identical frames without it.

use std::io::{self, IoSlice, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::proto::{DecodeError, ErrorCode, Message, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION};

/// Frame-header flag bit 0: a 4-byte CRC32 trailer follows the
/// payload, covering the header and payload bytes.
pub const FLAG_CRC: u16 = 0x0001;

/// Frame-header flag bit 1: an 8-byte little-endian trace id sits
/// between the header and the payload (and is covered by the CRC
/// trailer when both flags are set). Only sent to peers that
/// advertised [`crate::proto::CAP_TRACE`].
pub const FLAG_TRACE: u16 = 0x0002;

/// Frame-header flag bit 2: a 4-byte little-endian deadline budget
/// (milliseconds) sits between the trace id (when present) and the
/// payload, covered by the CRC trailer. Only sent to peers that
/// advertised [`crate::proto::CAP_DEADLINE`].
pub const FLAG_DEADLINE: u16 = 0x0004;

/// Every assigned frame-flag bit. A frame setting any other bit is
/// rejected before its payload is read; the protocol-conformance
/// pass sweeps the full combination space of these bits (and probes
/// unassigned ones) against [`read_frame`].
pub const KNOWN_FLAGS: u16 = FLAG_CRC | FLAG_TRACE | FLAG_DEADLINE;

/// Consecutive mid-frame read timeouts tolerated before the reader
/// gives up and surfaces a typed timeout error. A peer that started a
/// frame and then went silent must not hang the reader forever — the
/// connection is torn down and redialed instead.
const MIDFRAME_TIMEOUT_BUDGET: u32 = 8;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3) over `chunks`, in order.
pub fn crc32(chunks: &[&[u8]]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for chunk in chunks {
        for &b in *chunk {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

/// Anything that can go wrong talking to a peer.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level failure.
    Io(io::Error),
    /// The byte stream violated the framing or encoding rules.
    Protocol(String),
    /// The remote replied with a typed [`Message::Error`].
    Remote {
        /// Error code sent by the peer.
        code: ErrorCode,
        /// Detail message sent by the peer.
        message: String,
    },
    /// The remote replied with a message the caller did not expect.
    Unexpected {
        /// Opcode of the surprising reply.
        opcode: u8,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Remote { code, message } => {
                write!(f, "remote error {code:?}: {message}")
            }
            NetError::Unexpected { opcode } => {
                write!(f, "unexpected reply opcode 0x{opcode:02x}")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl NetError {
    /// Transport-level failure: the connection is in an unknown or
    /// dead state and must be discarded before any retry.
    pub fn is_transport(&self) -> bool {
        matches!(self, NetError::Io(_) | NetError::Protocol(_))
    }

    /// Whether retrying the same request (possibly over a fresh
    /// connection) may succeed: any transport failure, or a typed
    /// [`ErrorCode::Retryable`] from the remote.
    pub fn is_transient(&self) -> bool {
        match self {
            NetError::Remote { code, .. } => code.is_transient(),
            NetError::Io(_) | NetError::Protocol(_) => true,
            NetError::Unexpected { .. } => false,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        NetError::Protocol(e.to_string())
    }
}

/// Serialize `msg` into a complete frame (header + payload + CRC32
/// trailer). Exposed so the fault injector can truncate or corrupt a
/// frame deliberately; normal senders use [`write_message`].
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    encode_frame_traced(msg, None)
}

/// Like [`encode_frame`], optionally carrying a trace id (sets
/// `FLAG_TRACE` and inserts the 8-byte field between header and
/// payload). Callers must only pass `Some` when the receiving peer
/// advertised [`crate::proto::CAP_TRACE`].
pub fn encode_frame_traced(msg: &Message, trace: Option<u64>) -> Vec<u8> {
    encode_frame_opts(msg, trace, None)
}

/// The full frame encoder: optional trace id and optional deadline
/// budget (milliseconds). Callers must only pass `Some` for a field
/// whose capability ([`crate::proto::CAP_TRACE`] /
/// [`crate::proto::CAP_DEADLINE`]) the receiving peer advertised.
pub fn encode_frame_opts(msg: &Message, trace: Option<u64>, budget_ms: Option<u32>) -> Vec<u8> {
    let payload = msg.encode_payload();
    assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let flags = FLAG_CRC
        | if trace.is_some() { FLAG_TRACE } else { 0 }
        | if budget_ms.is_some() { FLAG_DEADLINE } else { 0 };
    let mut frame = Vec::with_capacity(HEADER_LEN + 12 + payload.len() + 4);
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(msg.opcode());
    frame.extend_from_slice(&flags.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    if let Some(id) = trace {
        frame.extend_from_slice(&id.to_le_bytes());
    }
    if let Some(ms) = budget_ms {
        frame.extend_from_slice(&ms.to_le_bytes());
    }
    // das-lint: allow(DA804) single-buffer encode for small control replies; blob carriers use frame_parts
    frame.extend_from_slice(&payload);
    let crc = crc32(&[&frame]);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// One frame split into scatter/gather segments: a small owned `head`
/// (header, optional trace id, payload prefix), a borrowed `body`
/// (the bulk blob bytes — a strip payload or metrics text), and the
/// 4-byte CRC trailer. `head ⧺ body ⧺ tail` is bit-identical to
/// [`encode_frame_traced`] output, but building one never copies the
/// body: the CRC is computed chunk-wise and the writer hands the
/// segments to `write_vectored`.
#[derive(Debug)]
pub struct FrameParts<'a> {
    /// Frame header + optional trace id + payload prefix.
    pub head: Vec<u8>,
    /// Borrowed bulk payload bytes (empty for non-blob messages).
    pub body: &'a [u8],
    /// CRC32 trailer over `head ⧺ body`, little-endian.
    pub tail: [u8; 4],
}

impl FrameParts<'_> {
    /// Total frame length in bytes.
    pub fn len(&self) -> usize {
        self.head.len() + self.body.len() + self.tail.len()
    }

    /// A frame is never empty (the header alone is 12 bytes).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Concatenate the segments into one owned frame — the slow path
    /// for callers (fault injection) that need to slice or corrupt
    /// the frame as contiguous bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.len());
        v.extend_from_slice(&self.head);
        v.extend_from_slice(self.body);
        v.extend_from_slice(&self.tail);
        v
    }
}

/// Build the scatter/gather segments of one frame, optionally traced.
/// The bulk payload of blob-carrying messages is *borrowed* from the
/// message ([`Message::split_payload`]), so encoding a 4 MiB strip
/// allocates only the ~30-byte head.
pub fn frame_parts_traced(msg: &Message, trace: Option<u64>) -> FrameParts<'_> {
    frame_parts_opts(msg, trace, None)
}

/// Like [`frame_parts_traced`], optionally carrying a deadline budget.
pub fn frame_parts_opts(
    msg: &Message,
    trace: Option<u64>,
    budget_ms: Option<u32>,
) -> FrameParts<'_> {
    let (prefix, body) = msg.split_payload();
    raw_frame_parts_opts(msg.opcode(), &prefix, body, trace, budget_ms)
}

/// Build frame segments from an already-split payload: `prefix` holds
/// the fixed fields (copied into the head), `body` the borrowed bulk
/// bytes. This is the layer that lets a server reply with a strip
/// straight out of its store — the caller supplies the store's bytes
/// as `body` and no intermediate payload `Vec` is ever built.
pub fn raw_frame_parts<'a>(
    opcode: u8,
    prefix: &[u8],
    body: &'a [u8],
    trace: Option<u64>,
) -> FrameParts<'a> {
    raw_frame_parts_opts(opcode, prefix, body, trace, None)
}

/// Like [`raw_frame_parts`], optionally carrying a deadline budget.
pub fn raw_frame_parts_opts<'a>(
    opcode: u8,
    prefix: &[u8],
    body: &'a [u8],
    trace: Option<u64>,
    budget_ms: Option<u32>,
) -> FrameParts<'a> {
    let payload_len = prefix.len() + body.len();
    assert!(payload_len <= MAX_PAYLOAD, "payload exceeds MAX_PAYLOAD");
    let flags = FLAG_CRC
        | if trace.is_some() { FLAG_TRACE } else { 0 }
        | if budget_ms.is_some() { FLAG_DEADLINE } else { 0 };
    let mut head = Vec::with_capacity(HEADER_LEN + 12 + prefix.len());
    head.extend_from_slice(&MAGIC);
    head.push(VERSION);
    head.push(opcode);
    head.extend_from_slice(&flags.to_le_bytes());
    head.extend_from_slice(&(payload_len as u32).to_le_bytes());
    if let Some(id) = trace {
        head.extend_from_slice(&id.to_le_bytes());
    }
    if let Some(ms) = budget_ms {
        head.extend_from_slice(&ms.to_le_bytes());
    }
    head.extend_from_slice(prefix);
    let crc = crc32(&[&head, body]);
    FrameParts { head, body, tail: crc.to_le_bytes() }
}

/// Write `parts` onto `w` with `write_vectored`, falling back to a
/// segment-advancing loop on short writes (the default `Write`
/// implementation may accept only the first buffer, and a socket may
/// accept any prefix). Flushes when done.
pub fn write_frame_vectored<W: Write>(w: &mut W, parts: &FrameParts<'_>) -> io::Result<()> {
    let segments: [&[u8]; 3] = [&parts.head, parts.body, &parts.tail];
    let total: usize = segments.iter().map(|s| s.len()).sum();
    let mut written = 0usize;
    while written < total {
        // Re-slice the segments past what has already been written.
        let mut skip = written;
        let mut bufs = [IoSlice::new(&[]); 3];
        let mut n_bufs = 0;
        for seg in &segments {
            if skip >= seg.len() {
                skip -= seg.len();
                continue;
            }
            bufs[n_bufs] = IoSlice::new(&seg[skip..]);
            n_bufs += 1;
            skip = 0;
        }
        match w.write_vectored(&bufs[..n_bufs]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                ))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    w.flush()
}

/// Serialize `msg` as one frame onto `w` and flush.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    write_message_traced(w, msg, None)
}

/// Serialize `msg` with an optional trace id onto `w` and flush.
/// Routes through the vectored writer, so blob payloads (strips,
/// metrics dumps) go to the socket without an intermediate copy.
pub fn write_message_traced<W: Write>(
    w: &mut W,
    msg: &Message,
    trace: Option<u64>,
) -> io::Result<()> {
    write_frame_vectored(w, &frame_parts_traced(msg, trace))
}

/// Serialize `msg` with optional trace id and deadline budget onto
/// `w` and flush.
pub fn write_message_opts<W: Write>(
    w: &mut W,
    msg: &Message,
    trace: Option<u64>,
    budget_ms: Option<u32>,
) -> io::Result<()> {
    write_frame_vectored(w, &frame_parts_opts(msg, trace, budget_ms))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Fill `buf` from `r`, tolerating up to `MIDFRAME_TIMEOUT_BUDGET`
/// consecutive read timeouts (the counter resets on progress). An EOF
/// surfaces as `Ok(read_so_far)`; exhausting the timeout budget is a
/// typed `TimedOut` error — a peer that goes silent mid-frame must
/// never hang the reader.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<usize, NetError> {
    let mut got = 0;
    let mut stalls = 0u32;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(got),
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MIDFRAME_TIMEOUT_BUDGET {
                    return Err(NetError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("peer stalled mid-{what} ({got} of {} bytes)", buf.len()),
                    )));
                }
            }
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(got)
}

/// Read exactly one frame from `r`, verify its checksum when present,
/// and decode it. An EOF *before the first header byte* surfaces as
/// `Ok(None)` (clean connection close); an EOF mid-frame is an error.
///
/// Sockets with a read timeout: a timeout while *waiting* for a frame
/// (no header byte read yet) surfaces as the I/O error so the caller
/// can poll a shutdown flag and retry; a timeout *mid-frame* retries
/// a bounded number of times (giving up there desynchronizes the
/// stream, so the caller must discard the connection — which every
/// caller in this crate now does).
pub fn read_message<R: Read>(r: &mut R) -> Result<Option<Message>, NetError> {
    Ok(read_frame(r)?.map(|(msg, _trace)| msg))
}

/// Like [`read_message`], also surfacing the frame's trace id when
/// the sender attached one (`FLAG_TRACE`).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(Message, Option<u64>)>, NetError> {
    Ok(read_frame_ex(r)?.map(|f| (f.msg, f.trace)))
}

/// One fully decoded frame: the message plus the optional per-request
/// metadata fields the sender attached.
#[derive(Debug)]
pub struct Frame {
    /// The decoded message.
    pub msg: Message,
    /// Trace id (`FLAG_TRACE`), when the sender attached one.
    pub trace: Option<u64>,
    /// Deadline budget in milliseconds (`FLAG_DEADLINE`), when the
    /// sender attached one.
    pub budget_ms: Option<u32>,
    /// Microseconds of CPU spent validating and decoding the frame
    /// (checksum verification + payload parse), excluding any time
    /// blocked on the transport — the honest "decode" stage for span
    /// attribution on both engines.
    pub decode_us: u64,
}

/// Like [`read_frame`], also surfacing the frame's deadline budget
/// when the sender attached one (`FLAG_DEADLINE`).
pub fn read_frame_ex<R: Read>(r: &mut R) -> Result<Option<Frame>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    // The first header byte decides clean-close vs mid-frame cut, and
    // a timeout before it belongs to the caller (shutdown polling).
    let mut got = 0;
    while got == 0 {
        match r.read(&mut header[..1]) {
            Ok(0) => return Ok(None),
            Ok(n) => got = n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    if read_full(r, &mut header[1..], "header")? != HEADER_LEN - 1 {
        return Err(NetError::Protocol("connection closed mid-header".into()));
    }
    if header[0..4] != MAGIC {
        return Err(NetError::Protocol("bad frame magic".into()));
    }
    if header[4] != VERSION {
        return Err(NetError::Protocol(format!(
            "unsupported protocol version {} (want {VERSION})",
            header[4]
        )));
    }
    let opcode = header[5];
    let flags = u16::from_le_bytes(header[6..8].try_into().unwrap()); // das-lint: allow(DA401) infallible 2-byte slice → array
    if flags & !KNOWN_FLAGS != 0 {
        return Err(NetError::Protocol(format!("unknown flags 0x{flags:04x}")));
    }
    let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize; // das-lint: allow(DA401) infallible 4-byte slice → array
    if len > MAX_PAYLOAD {
        return Err(NetError::Protocol(format!(
            "payload length {len} exceeds cap {MAX_PAYLOAD}"
        )));
    }
    let mut trace_field = [0u8; 8];
    let trace = if flags & FLAG_TRACE != 0 {
        if read_full(r, &mut trace_field, "trace id")? != 8 {
            return Err(NetError::Protocol("connection closed mid-trace".into()));
        }
        Some(u64::from_le_bytes(trace_field))
    } else {
        None
    };
    let mut budget_field = [0u8; 4];
    let budget_ms = if flags & FLAG_DEADLINE != 0 {
        if read_full(r, &mut budget_field, "deadline budget")? != 4 {
            return Err(NetError::Protocol("connection closed mid-budget".into()));
        }
        Some(u32::from_le_bytes(budget_field))
    } else {
        None
    };
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload, "payload")? != len {
        return Err(NetError::Protocol("connection closed mid-payload".into()));
    }
    let crc_wanted = if flags & FLAG_CRC != 0 {
        let mut trailer = [0u8; 4];
        if read_full(r, &mut trailer, "checksum")? != 4 {
            return Err(NetError::Protocol("connection closed mid-checksum".into()));
        }
        Some(u32::from_le_bytes(trailer))
    } else {
        None
    };
    let parse_started = Instant::now();
    if let Some(wanted) = crc_wanted {
        let trace_bytes: &[u8] = if trace.is_some() { &trace_field } else { &[] };
        let budget_bytes: &[u8] = if budget_ms.is_some() { &budget_field } else { &[] };
        let actual = crc32(&[&header, trace_bytes, budget_bytes, &payload]);
        if wanted != actual {
            return Err(NetError::Protocol(format!(
                "frame checksum mismatch: wire {wanted:#010x}, computed {actual:#010x}"
            )));
        }
    }
    let msg = Message::decode(opcode, &payload)?;
    Ok(Some(Frame {
        msg,
        trace,
        budget_ms,
        decode_us: parse_started.elapsed().as_micros() as u64,
    }))
}

/// Owned scatter/gather write state for one frame on a nonblocking
/// socket: head (header + payload prefix), body (a refcounted
/// [`bytes::Bytes`] — a strip straight from the store), and CRC tail,
/// with a cursor tracking how much the socket has accepted so far.
/// The event-loop engine keeps one per queued reply and resumes the
/// write whenever the socket turns writable.
#[derive(Debug)]
pub struct IoVecCursor {
    head: Vec<u8>,
    body: bytes::Bytes,
    // The tail is at most a CRC32 — an inline array avoids a
    // per-reply heap allocation on the event-loop write path.
    tail: [u8; 4],
    tail_len: u8,
    written: usize,
}

impl IoVecCursor {
    /// Wrap one frame's segments; `body`/`tail` may be empty. `tail`
    /// is at most 4 bytes (a CRC32) and is copied inline — no
    /// allocation.
    pub fn new(head: Vec<u8>, body: bytes::Bytes, tail: &[u8]) -> IoVecCursor {
        assert!(tail.len() <= 4, "frame tail exceeds CRC32 width");
        let mut t = [0u8; 4];
        t[..tail.len()].copy_from_slice(tail);
        IoVecCursor { head, body, tail: t, tail_len: tail.len() as u8, written: 0 }
    }

    fn tail_slice(&self) -> &[u8] {
        &self.tail[..self.tail_len as usize]
    }

    /// Total frame length in bytes.
    pub fn total(&self) -> usize {
        self.head.len() + self.body.len() + self.tail_len as usize
    }

    /// Whether every byte has been accepted by the socket.
    pub fn is_done(&self) -> bool {
        self.written >= self.total()
    }

    /// Attempt one vectored write of the remaining segments.
    /// `Ok(0)` means the socket would block (or the frame is already
    /// done) — try again later; `Err` is fatal to the connection. A
    /// clean zero-length write from the peer surfaces as
    /// [`io::ErrorKind::WriteZero`].
    pub fn write_some<W: Write>(&mut self, w: &mut W) -> io::Result<usize> {
        if self.is_done() {
            return Ok(0);
        }
        let segments: [&[u8]; 3] = [&self.head, &self.body, self.tail_slice()];
        let mut skip = self.written;
        let mut bufs = [IoSlice::new(&[]); 3];
        let mut n_bufs = 0;
        for seg in &segments {
            if skip >= seg.len() {
                skip -= seg.len();
                continue;
            }
            bufs[n_bufs] = IoSlice::new(&seg[skip..]);
            n_bufs += 1;
            skip = 0;
        }
        match w.write_vectored(&bufs[..n_bufs]) {
            Ok(0) => Err(io::Error::new(io::ErrorKind::WriteZero, "peer stopped accepting bytes")),
            Ok(n) => {
                self.written += n;
                Ok(n)
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted) => {
                Ok(0)
            }
            Err(e) => Err(e),
        }
    }
}

/// An incremental frame decoder for nonblocking readers: feed it
/// whatever bytes the socket produced with [`FrameBuffer::extend`],
/// then drain complete frames with [`FrameBuffer::next_frame`]. The
/// validation order and limits are identical to [`read_frame`] — the
/// wire length field is checked against [`MAX_PAYLOAD`] before any
/// allocation or indexing derives from it — so a byte stream split at
/// arbitrary boundaries reassembles bit-identically to blocking
/// reads.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append raw bytes read from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact once the consumed prefix dominates, so a long-lived
        // connection doesn't grow the buffer without bound.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        // das-lint: allow(DA804) ingress reassembly buffer — bytes arrive from the socket, not the store
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete frame, if the buffer holds one.
    /// `Ok(None)` means "need more bytes"; errors are fatal to the
    /// connection (framing violations desynchronize the stream).
    pub fn next_frame(&mut self) -> Result<Option<(Message, Option<u64>)>, NetError> {
        Ok(self.next_frame_ex()?.map(|f| (f.msg, f.trace)))
    }

    /// Like [`FrameBuffer::next_frame`], also surfacing the frame's
    /// deadline budget when the sender attached one (`FLAG_DEADLINE`).
    pub fn next_frame_ex(&mut self) -> Result<Option<Frame>, NetError> {
        let parse_started = Instant::now();
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let header = &avail[..HEADER_LEN];
        if header[0..4] != MAGIC {
            return Err(NetError::Protocol("bad frame magic".into()));
        }
        if header[4] != VERSION {
            return Err(NetError::Protocol(format!(
                "unsupported protocol version {} (want {VERSION})",
                header[4]
            )));
        }
        let opcode = header[5];
        let flags = u16::from_le_bytes(header[6..8].try_into().unwrap()); // das-lint: allow(DA401) infallible 2-byte slice → array
        if flags & !KNOWN_FLAGS != 0 {
            return Err(NetError::Protocol(format!("unknown flags 0x{flags:04x}")));
        }
        let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize; // das-lint: allow(DA401) infallible 4-byte slice → array
        if len > MAX_PAYLOAD {
            return Err(NetError::Protocol(format!(
                "payload length {len} exceeds cap {MAX_PAYLOAD}"
            )));
        }
        let trace_len = if flags & FLAG_TRACE != 0 { 8 } else { 0 };
        let budget_len = if flags & FLAG_DEADLINE != 0 { 4 } else { 0 };
        let crc_len = if flags & FLAG_CRC != 0 { 4 } else { 0 };
        let meta_len = trace_len + budget_len;
        let total = HEADER_LEN + meta_len + len + crc_len;
        if avail.len() < total {
            return Ok(None);
        }
        let trace = if trace_len == 8 {
            let field: [u8; 8] = avail[HEADER_LEN..HEADER_LEN + 8].try_into().unwrap(); // das-lint: allow(DA401) infallible 8-byte slice → array
            Some(u64::from_le_bytes(field))
        } else {
            None
        };
        let budget_ms = if budget_len == 4 {
            let at = HEADER_LEN + trace_len;
            let field: [u8; 4] = avail[at..at + 4].try_into().unwrap(); // das-lint: allow(DA401) infallible 4-byte slice → array
            Some(u32::from_le_bytes(field))
        } else {
            None
        };
        let payload = &avail[HEADER_LEN + meta_len..HEADER_LEN + meta_len + len]; // das-lint: allow(DA502) `avail.len() < total` above bounds HEADER_LEN + meta_len + len + crc_len
        if crc_len == 4 {
            let trailer: [u8; 4] = avail[total - 4..total].try_into().unwrap(); // das-lint: allow(DA401) infallible 4-byte slice → array
            let actual = crc32(&[&avail[..HEADER_LEN + meta_len + len]]); // das-lint: allow(DA502) covered by the same `total` bounds check
            let wanted = u32::from_le_bytes(trailer);
            if wanted != actual {
                return Err(NetError::Protocol(format!(
                    "frame checksum mismatch: wire {wanted:#010x}, computed {actual:#010x}"
                )));
            }
        }
        let msg = Message::decode(opcode, payload)?;
        self.pos += total;
        Ok(Some(Frame {
            msg,
            trace,
            budget_ms,
            decode_us: parse_started.elapsed().as_micros() as u64,
        }))
    }
}

/// A `Read + Write` wrapper that counts every byte crossing it, in
/// both directions, into shared atomic counters. The daemon registers
/// each connection's counters under its traffic class (client↔server
/// or server↔server) once the peer's [`Message::Hello`] arrives —
/// the counters are shared, so bytes that crossed before
/// classification are not lost.
#[derive(Debug)]
pub struct CountingStream<S> {
    inner: S,
    bytes_in: Arc<AtomicU64>,
    bytes_out: Arc<AtomicU64>,
}

impl<S> CountingStream<S> {
    /// Wrap `inner` with fresh zeroed counters.
    pub fn new(inner: S) -> Self {
        CountingStream {
            inner,
            bytes_in: Arc::new(AtomicU64::new(0)),
            bytes_out: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Handle on the receive counter.
    pub fn bytes_in(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.bytes_in)
    }

    /// Handle on the send counter.
    pub fn bytes_out(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.bytes_out)
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Read> Read for CountingStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl<S: Write> Write for CountingStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let n = self.inner.write_vectored(bufs)?;
        self.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip_and_counting() {
        let msg = Message::PutStrip { file: 2, strip: 5, payload: vec![9; 100] };
        let mut sink = CountingStream::new(Cursor::new(Vec::new()));
        write_message(&mut sink, &msg).unwrap();
        let written = sink.bytes_out().load(Ordering::Relaxed);
        let buf = sink.get_ref().get_ref().clone();
        assert_eq!(written as usize, buf.len());
        // Header + payload + 4-byte CRC trailer.
        assert_eq!(buf.len(), HEADER_LEN + msg.encode_payload().len() + 4);

        let mut src = CountingStream::new(Cursor::new(buf));
        let back = read_message(&mut src).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(src.bytes_in().load(Ordering::Relaxed), written);
        // Clean EOF after the frame.
        assert!(read_message(&mut src).unwrap().is_none());
    }

    #[test]
    fn corrupt_magic_is_a_protocol_error() {
        let msg = Message::Ping;
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        buf[0] = b'X';
        match read_message(&mut Cursor::new(buf)) {
            Err(NetError::Protocol(m)) => assert!(m.contains("magic")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let msg = Message::PutStrip { file: 1, strip: 2, payload: vec![7; 64] };
        let mut buf = encode_frame(&msg);
        buf[HEADER_LEN + 20] ^= 0x40; // flip one payload bit
        match read_message(&mut Cursor::new(buf)) {
            Err(NetError::Protocol(m)) => assert!(m.contains("checksum"), "got {m:?}"),
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_opcode_fails_the_checksum() {
        // The CRC covers the header too: a flipped opcode must not
        // decode as a different (well-formed) message.
        let mut buf = encode_frame(&Message::Ping);
        buf[5] ^= 0x01; // Ping (0x50) -> Pong (0x51), payloads identical
        assert!(read_message(&mut Cursor::new(buf)).is_err());
    }

    #[test]
    fn crc_less_frames_are_still_accepted() {
        // Flags 0, no trailer — the negotiated-downgrade format.
        let msg = Message::GetStrip { file: 3, strip: 9 };
        let payload = msg.encode_payload();
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(msg.opcode());
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        let back = read_message(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn traced_frames_roundtrip_and_legacy_readers_differ_only_by_flag() {
        let msg = Message::GetStrip { file: 3, strip: 9 };
        let frame = encode_frame_traced(&msg, Some(0xDEAD_BEEF_CAFE_F00D));
        let (back, trace) = read_frame(&mut Cursor::new(frame)).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(trace, Some(0xDEAD_BEEF_CAFE_F00D));
        // Untraced frames read identically through both entry points
        // and report no trace id.
        let plain = encode_frame(&msg);
        assert_eq!(plain, encode_frame_traced(&msg, None));
        let (back, trace) = read_frame(&mut Cursor::new(plain)).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(trace, None);
    }

    #[test]
    fn budgeted_frames_roundtrip_and_legacy_encoders_are_bit_identical() {
        let msg = Message::GetStrip { file: 3, strip: 9 };
        // Every combination of the two optional fields roundtrips.
        for trace in [None, Some(0xDEAD_BEEF_CAFE_F00Du64)] {
            for budget in [None, Some(1500u32)] {
                let frame = encode_frame_opts(&msg, trace, budget);
                let f = read_frame_ex(&mut Cursor::new(frame.clone())).unwrap().unwrap();
                assert_eq!(f.msg, msg);
                assert_eq!(f.trace, trace);
                assert_eq!(f.budget_ms, budget);
                // The incremental decoder agrees byte for byte.
                let mut fb = FrameBuffer::new();
                fb.extend(&frame);
                let f = fb.next_frame_ex().unwrap().unwrap();
                assert_eq!((f.msg, f.trace, f.budget_ms), (msg.clone(), trace, budget));
                assert_eq!(fb.pending(), 0);
                // The vectored path builds the identical frame.
                assert_eq!(frame_parts_opts(&msg, trace, budget).to_vec(), frame);
            }
        }
        // Budget-less encoding through the new entry point is
        // bit-identical to the legacy encoders: a client that never
        // negotiated CAP_DEADLINE produces unchanged wire bytes.
        assert_eq!(encode_frame_opts(&msg, None, None), encode_frame(&msg));
        assert_eq!(encode_frame_opts(&msg, Some(7), None), encode_frame_traced(&msg, Some(7)));
    }

    #[test]
    fn corrupted_budget_field_fails_the_checksum() {
        let mut frame = encode_frame_opts(&Message::Ping, Some(42), Some(900));
        frame[HEADER_LEN + 8] ^= 0x01; // first byte of the budget field
        assert!(read_frame_ex(&mut Cursor::new(frame.clone())).is_err());
        let mut fb = FrameBuffer::new();
        fb.extend(&frame);
        assert!(fb.next_frame_ex().is_err());
    }

    #[test]
    fn corrupted_trace_id_fails_the_checksum() {
        let mut frame = encode_frame_traced(&Message::Ping, Some(42));
        frame[HEADER_LEN] ^= 0x01; // first byte of the trace field
        assert!(read_frame(&mut Cursor::new(frame)).is_err());
    }

    #[test]
    fn frame_parts_are_bit_identical_to_encode_frame() {
        for msg in Message::samples() {
            for trace in [None, Some(0x0123_4567_89AB_CDEFu64)] {
                let parts = frame_parts_traced(&msg, trace);
                assert_eq!(parts.to_vec(), encode_frame_traced(&msg, trace));
                assert_eq!(parts.len(), parts.to_vec().len());
            }
        }
    }

    /// A writer that accepts at most one byte per call, exercising
    /// the short-write fallback across every segment boundary.
    struct TrickleWriter(Vec<u8>);

    impl Write for TrickleWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_writer_survives_short_writes() {
        let msg = Message::PutStrip { file: 3, strip: 7, payload: vec![0xAB; 300] };
        let parts = frame_parts_traced(&msg, Some(99));
        let mut w = TrickleWriter(Vec::new());
        write_frame_vectored(&mut w, &parts).unwrap();
        assert_eq!(w.0, encode_frame_traced(&msg, Some(99)));
    }

    #[test]
    fn frame_buffer_reassembles_at_every_split_point() {
        let msgs = [
            Message::Ping,
            Message::PutStrip { file: 1, strip: 2, payload: vec![5; 96] },
            Message::GetStrip { file: 1, strip: 2 },
        ];
        let mut wire = Vec::new();
        for (i, m) in msgs.iter().enumerate() {
            wire.extend_from_slice(&encode_frame_traced(m, Some(i as u64)));
        }
        for split in 0..=wire.len() {
            let mut fb = FrameBuffer::new();
            fb.extend(&wire[..split]);
            let mut got = Vec::new();
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
            fb.extend(&wire[split..]);
            while let Some(f) = fb.next_frame().unwrap() {
                got.push(f);
            }
            assert_eq!(got.len(), msgs.len(), "split at {split}");
            for (i, (m, t)) in got.iter().enumerate() {
                assert_eq!(m, &msgs[i]);
                assert_eq!(*t, Some(i as u64));
            }
            assert_eq!(fb.pending(), 0);
        }
    }

    #[test]
    fn frame_buffer_rejects_oversized_length_before_buffering_payload() {
        let mut bad = Vec::new();
        bad.extend_from_slice(&MAGIC);
        bad.push(VERSION);
        bad.push(0x50);
        bad.extend_from_slice(&0u16.to_le_bytes());
        bad.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut fb = FrameBuffer::new();
        fb.extend(&bad);
        match fb.next_frame() {
            Err(NetError::Protocol(m)) => assert!(m.contains("cap")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }

    #[test]
    fn frame_buffer_compacts_consumed_prefix() {
        let frame = encode_frame(&Message::PutStrip { file: 1, strip: 0, payload: vec![1; 2048] });
        let mut fb = FrameBuffer::new();
        for _ in 0..16 {
            fb.extend(&frame);
            assert!(fb.next_frame().unwrap().is_some());
        }
        assert_eq!(fb.pending(), 0);
        assert!(fb.buf.len() < 3 * frame.len(), "buffer kept growing: {}", fb.buf.len());
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic IEEE 802.3 check value.
        assert_eq!(crc32(&[b"123456789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xCBF4_3926);
        assert_eq!(crc32(&[b""]), 0);
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(VERSION);
        buf.push(0x50);
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        match read_message(&mut Cursor::new(buf)) {
            Err(NetError::Protocol(m)) => assert!(m.contains("cap")),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }
}
