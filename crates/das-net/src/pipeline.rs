//! A pipelined client connection: many in-flight requests on one
//! socket, replies matched by trace id.
//!
//! The classic [`crate::client::DasCluster`] connection is strictly
//! serial — one request, one reply, alternate. That shape caps a
//! connection's throughput at `1 / RTT` regardless of how fast the
//! server is. [`PipeClient`] removes the cap without any protocol
//! change: every request carries a unique id in the frame's **trace
//! field** (the server echoes it verbatim), a background reader
//! thread demultiplexes replies to the callers that sent them, and
//! any number of threads may call into one connection concurrently.
//! Replies may legally arrive out of order — the event-loop server
//! core completes requests in whatever order its workers finish.
//!
//! Pipelining therefore requires both ends to have negotiated
//! [`crate::proto::CAP_TRACE`]; connecting to a legacy server fails
//! with a typed error rather than silently mismatching replies.
//!
//! Failure semantics follow the crate's "connections are disposable"
//! rule: any transport error poisons the whole connection — every
//! in-flight caller gets a transport error (each may retry on a fresh
//! connection), and later calls fail fast. A reply that never comes
//! surfaces as a timeout after a multiple of the policy's read
//! deadline, mirroring the serial client's worst-case stall budget.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::codec::{read_frame, write_message_opts, write_message_traced, CountingStream, NetError};
use crate::proto::{Message, Role, CAP_DEADLINE, CAP_TRACE, LOCAL_CAPS};
use crate::retry::RetryPolicy;
use crate::server::lock;

/// How often the reader thread wakes to poll the close flag while the
/// socket is idle.
const READER_POLL: Duration = Duration::from_millis(100);

/// Reply waiters, keyed by the request id carried in the trace field.
/// A waiter learns about connection death by its sender being dropped.
type PendingMap = HashMap<u64, mpsc::Sender<Message>>;

/// Shared connection state; the reader thread holds its own handle.
struct Inner {
    wr: Mutex<CountingStream<TcpStream>>,
    pending: Mutex<PendingMap>,
    next_id: AtomicU64,
    closed: AtomicBool,
    server_id: u32,
    /// Whether the server advertised [`CAP_DEADLINE`]: requests then
    /// carry the same reply budget this client enforces locally, so an
    /// overloaded server can shed work nobody is still waiting for.
    deadline_ok: bool,
    policy: RetryPolicy,
}

impl Inner {
    /// Mark the connection dead and wake every in-flight caller with
    /// a transport error (by dropping their reply senders).
    fn poison(&self) {
        self.closed.store(true, Ordering::SeqCst);
        lock(&self.pending).clear();
    }
}

/// A pipelined connection to one `dasd` server. Cheap to share:
/// `&self` methods are thread-safe, and concurrent callers' requests
/// interleave on the single socket.
pub struct PipeClient {
    inner: Arc<Inner>,
    reader: Option<JoinHandle<()>>,
}

impl PipeClient {
    /// Dial `addr`, run the `Hello`/`HelloOk` handshake as a client,
    /// and start the reply-demultiplexing reader thread. Fails with a
    /// typed protocol error if the server did not advertise
    /// [`CAP_TRACE`] — without the echoed trace field there is no way
    /// to match out-of-order replies.
    pub fn connect(addr: &str, policy: &RetryPolicy) -> Result<PipeClient, NetError> {
        let stream = policy.connect(addr)?;
        let mut stream = CountingStream::new(stream);
        write_message_traced(
            &mut stream,
            &Message::Hello { role: Role::Client, peer_id: 0, caps: LOCAL_CAPS },
            None,
        )?;
        let (server_id, caps) = match read_frame(&mut stream)? {
            Some((Message::HelloOk { server_id, caps }, _)) => (server_id, caps),
            Some((Message::Error { code, message }, _)) => {
                return Err(NetError::Remote { code, message })
            }
            Some((other, _)) => return Err(NetError::Unexpected { opcode: other.opcode() }),
            None => return Err(NetError::Protocol("connection closed during handshake".into())),
        };
        if caps & CAP_TRACE == 0 {
            return Err(NetError::Protocol(
                "server lacks CAP_TRACE; pipelined replies cannot be matched".into(),
            ));
        }
        let reader_stream = match stream.get_ref().try_clone() {
            Ok(s) => s,
            Err(e) => return Err(NetError::Io(e)),
        };
        let _ = reader_stream.set_read_timeout(Some(READER_POLL));
        let inner = Arc::new(Inner {
            wr: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            closed: AtomicBool::new(false),
            server_id,
            deadline_ok: caps & CAP_DEADLINE != 0,
            policy: policy.clone(),
        });
        let reader = std::thread::spawn({
            let inner = Arc::clone(&inner);
            move || reader_loop(&inner, reader_stream)
        });
        Ok(PipeClient { inner, reader: Some(reader) })
    }

    /// The server id reported in the handshake.
    pub fn server_id(&self) -> u32 {
        self.inner.server_id
    }

    /// Whether the connection has been poisoned by a transport error
    /// (or closed). A closed client fails every call fast; the owner
    /// should redial.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Issue one request and block until its reply arrives, however
    /// many other requests are in flight around it. Typed server
    /// errors come back as [`NetError::Remote`]; transport failures
    /// poison the connection for every caller.
    pub fn call(&self, msg: &Message) -> Result<Message, NetError> {
        if self.is_closed() {
            return Err(NetError::Io(io::Error::new(
                io::ErrorKind::NotConnected,
                "pipelined connection is closed",
            )));
        }
        let inner = &*self.inner;
        let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
        // Long-running ops get the same stretched deadline the serial
        // client uses; ordinary ops still get several read-timeouts of
        // slack because a pipelined reply legitimately queues behind
        // every other in-flight request on the connection.
        let factor = if matches!(
            msg,
            Message::Execute { .. } | Message::RedistPrepare { .. } | Message::RedistCommit { .. }
        ) {
            10
        } else {
            8
        };
        let deadline = inner.policy.read_timeout.saturating_mul(factor);
        // Tell a CAP_DEADLINE server the budget we will actually wait —
        // queueing past it means the server may shed instead of
        // answering into the void.
        let budget_ms = if inner.deadline_ok {
            Some(deadline.as_millis().clamp(1, u128::from(u32::MAX)) as u32)
        } else {
            None
        };
        let (tx, rx) = mpsc::channel();
        lock(&inner.pending).insert(id, tx);
        {
            let mut w = lock(&inner.wr);
            if let Err(e) = write_message_opts(&mut *w, msg, Some(id), budget_ms) {
                drop(w);
                lock(&inner.pending).remove(&id);
                inner.poison();
                return Err(NetError::Io(e));
            }
        }
        match rx.recv_timeout(deadline) {
            Ok(Message::Error { code, message }) => Err(NetError::Remote { code, message }),
            Ok(reply) => Ok(reply),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                lock(&inner.pending).remove(&id);
                Err(NetError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("no reply for request {id} within {deadline:?}"),
                )))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(NetError::Io(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "connection failed while awaiting reply",
            ))),
        }
    }
}

impl Drop for PipeClient {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::SeqCst);
        // Shut the socket down so a reader mid-frame exits immediately
        // instead of waiting out its poll interval.
        {
            let w = lock(&self.inner.wr);
            let _ = w.get_ref().shutdown(Shutdown::Both);
        }
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

/// Reader-thread body: demultiplex traced replies to their waiters
/// until the connection dies or the owner closes it.
fn reader_loop(inner: &Inner, mut stream: TcpStream) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some((reply, Some(id)))) => {
                // Deliver to the caller that sent request `id`; a late
                // reply whose caller already timed out is dropped.
                if let Some(tx) = lock(&inner.pending).remove(&id) {
                    let _ = tx.send(reply);
                }
            }
            Ok(Some((_, None))) => {
                // An untraced reply cannot be matched to a caller —
                // the stream is desynchronized for our purposes.
                inner.poison();
                return;
            }
            Ok(None) => {
                inner.poison();
                return;
            }
            Err(NetError::Io(e))
                if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
            {
                if inner.closed.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => {
                inner.poison();
                return;
            }
        }
    }
}
