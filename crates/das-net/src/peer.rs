//! Server→server connections: lazy, persistent, one per peer — now
//! fault-tolerant.
//!
//! A `dasd` talks to its peers for three reasons, all mirroring the
//! in-process runtime's traffic classes: dependence fetches during an
//! offloaded execution (the NAS cost the predictor prices), pulls
//! during redistribution's prepare phase, and forwarding of output
//! replica strips. Each peer link is opened on first use, greets with
//! `Hello { role: Server }`, and stays up while it works; concurrent
//! workers serialize on the link's mutex, which mirrors the
//! synchronous per-strip RPCs the paper's model assumes.
//!
//! Failure handling: every dial and I/O carries the table's
//! [`RetryPolicy`] timeouts, a transport error **evicts** the cached
//! connection (so the next attempt redials instead of reusing a dead
//! socket), and transient failures — broken links, timeouts, a peer's
//! typed `Retryable` — are retried with bounded deterministic
//! backoff. Exhausting the budget returns the last typed error; a
//! peer call can be slow, but it can neither hang nor wedge the link
//! forever.
//!
//! A peer that exhausts the budget additionally trips a **circuit
//! breaker**: for a cooldown window every call to it fails fast with
//! a typed error instead of re-burning the whole retry budget. This
//! matters most for replica forwarding during an offloaded execute —
//! without it, one dead peer adds a full retry budget of latency to
//! *every* boundary strip, and a busy daemon can look dead to its
//! clients. After the cooldown the next call probes the peer again,
//! so a rebooted server rejoins naturally.

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::codec::{read_message, write_message, write_message_opts, CountingStream, NetError};
use crate::hedge::LoadTracker;
use crate::proto::{ErrorCode, Message, Role, CAP_DEADLINE, CAP_TRACE, LOCAL_CAPS};
use crate::retry::RetryPolicy;
use crate::server::{ConnClass, StatsRegistry};

/// One live peer link plus what its `HelloOk` told us about it: a
/// peer that did not advertise [`CAP_TRACE`] (or [`CAP_DEADLINE`])
/// must keep seeing frames that are bit-identical to the legacy
/// encoding, so the traced-send and budget-send decisions are made
/// per link.
struct Link {
    stream: CountingStream<TcpStream>,
    traced: bool,
    /// Peer advertised [`CAP_DEADLINE`]: remaining-budget fields may
    /// be forwarded on this link.
    deadline_ok: bool,
}

type PeerConn = Arc<Mutex<Link>>;

/// Addresses of every server in the cluster, indexed by server id,
/// plus the live outbound connections of one daemon.
pub struct PeerTable {
    self_id: u32,
    addrs: Vec<String>,
    conns: Mutex<HashMap<u32, PeerConn>>,
    /// Circuit breaker: peers that exhausted a retry budget, mapped
    /// to the instant their cooldown expires.
    downs: Mutex<HashMap<u32, Instant>>,
    stats: Arc<StatsRegistry>,
    policy: RetryPolicy,
    metrics: Arc<das_obs::Registry>,
    /// Per-peer latency EWMAs, fed by every call attempt; failover
    /// walks are reordered lightest-first so a straggling peer drifts
    /// to the back of every dependence fetch.
    load: LoadTracker,
    /// The owning daemon's flight recorder, when attached: outbound
    /// fetches on behalf of traced requests record caller-side
    /// `peer_fetch` child spans into it.
    spans: Option<Arc<das_obs::SpanStore>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    // A worker that panicked while holding the lock must not wedge
    // every other worker: recover the guard and carry on.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Milliseconds left until `deadline`: `None` means no budget at all,
/// `Some(0)` means the budget is spent. A live sub-millisecond
/// remainder rounds up to 1 so it is never silently dropped from the
/// wire.
fn remaining_budget_ms(deadline: Option<Instant>) -> Option<u32> {
    deadline.map(|d| {
        let left = d.saturating_duration_since(Instant::now());
        if left.is_zero() {
            0
        } else {
            left.as_millis().clamp(1, u128::from(u32::MAX)) as u32
        }
    })
}

impl PeerTable {
    /// A table for server `self_id` in a cluster whose `addrs[i]` is
    /// the listen address of server `i`, with the default retry
    /// policy. Outbound traffic is counted into `stats` under the
    /// server↔server class.
    pub fn new(self_id: u32, addrs: Vec<String>, stats: Arc<StatsRegistry>) -> Self {
        PeerTable::with_policy(
            self_id,
            addrs,
            stats,
            RetryPolicy::default(),
            Arc::new(das_obs::Registry::new()),
        )
    }

    /// [`PeerTable::new`] with an explicit retry/timeout policy and a
    /// metrics registry that receives peer-side counters (retries,
    /// failovers, breaker trips).
    pub fn with_policy(
        self_id: u32,
        addrs: Vec<String>,
        stats: Arc<StatsRegistry>,
        policy: RetryPolicy,
        metrics: Arc<das_obs::Registry>,
    ) -> Self {
        let load = LoadTracker::new(addrs.len());
        PeerTable {
            self_id,
            addrs,
            conns: Mutex::new(HashMap::new()),
            downs: Mutex::new(HashMap::new()),
            stats,
            policy,
            metrics,
            load,
            spans: None,
        }
    }

    /// Attach the owning daemon's span store: dependence and
    /// redistribution fetches issued on behalf of traced requests
    /// then record `peer_fetch` child spans (see
    /// [`PeerTable::get_strip_failover_spanned`]).
    pub fn with_span_store(mut self, spans: Arc<das_obs::SpanStore>) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Number of servers in the cluster.
    pub fn cluster_size(&self) -> u32 {
        self.addrs.len() as u32
    }

    /// This daemon's id.
    pub fn self_id(&self) -> u32 {
        self.self_id
    }

    /// The table's retry/timeout policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    fn conn(&self, target: u32) -> Result<PeerConn, NetError> {
        if target == self.self_id {
            return Err(NetError::Protocol("refusing peer connection to self".into()));
        }
        let addr = self
            .addrs
            .get(target as usize)
            .ok_or(NetError::Remote {
                code: ErrorCode::NoSuchServer,
                message: format!("no server {target} in a {}-server cluster", self.addrs.len()),
            })?
            .clone();
        if let Some(c) = lock(&self.conns).get(&target) {
            return Ok(Arc::clone(c));
        }
        // Connect outside the map lock; a racing worker may connect
        // twice, in which case the loser's link is dropped unused.
        let mut stream = CountingStream::new(self.policy.connect(&addr)?);
        self.stats.register(ConnClass::Server, stream.bytes_in(), stream.bytes_out());
        write_message(
            &mut stream,
            &Message::Hello { role: Role::Server, peer_id: self.self_id, caps: LOCAL_CAPS },
        )?;
        let caps = match read_message(&mut stream)? {
            Some(Message::HelloOk { caps, .. }) => caps,
            Some(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
            None => {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed during handshake",
                )))
            }
        };
        let conn = Arc::new(Mutex::new(Link {
            stream,
            traced: caps & CAP_TRACE != 0,
            deadline_ok: caps & CAP_DEADLINE != 0,
        }));
        Ok(Arc::clone(lock(&self.conns).entry(target).or_insert(conn)))
    }

    /// One request/response attempt over the cached (or fresh) link.
    /// Any transport error evicts the connection so the next attempt
    /// redials instead of reusing a socket in an unknown state. The
    /// attempt's wall time — success or failure — feeds the peer's
    /// latency EWMA, so a peer that keeps timing out scores as slow,
    /// not as unknown.
    fn call_once(
        &self,
        target: u32,
        msg: &Message,
        trace: Option<u64>,
        deadline: Option<Instant>,
    ) -> Result<Message, NetError> {
        // An exhausted budget fails locally before touching the wire:
        // the caller's client has already given up on this request.
        // This is the one `Overloaded` a daemon mints on behalf of a
        // *peer* call, and it counts as a deadline shed so the fleet's
        // `dasd_requests_shed_total` accounts for every server-minted
        // `Overloaded` a client can observe.
        let budget_ms = match remaining_budget_ms(deadline) {
            Some(0) => {
                self.metrics
                    .counter("dasd_requests_shed_total", &[("reason", "deadline")])
                    .inc();
                return Err(NetError::Remote {
                    code: ErrorCode::Overloaded,
                    message: format!("deadline budget exhausted before calling peer {target}"),
                });
            }
            b => b,
        };
        let conn = self.conn(target)?;
        let mut link = lock(&conn);
        let trace = if link.traced { trace } else { None };
        let budget_ms = if link.deadline_ok { budget_ms } else { None };
        let stream = &mut link.stream;
        let started = Instant::now();
        let result = (|| {
            write_message_opts(&mut *stream, msg, trace, budget_ms)?;
            match read_message(&mut *stream)? {
                Some(Message::Error { code, message }) => Err(NetError::Remote { code, message }),
                Some(reply) => Ok(reply),
                None => Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-call",
                ))),
            }
        })();
        // Only successful calls feed the latency estimate: a refused
        // connection fails in microseconds, and scoring that would
        // make a *dead* peer look like the fastest one in the walk.
        if result.is_ok() {
            self.load.observe(target as usize, started.elapsed());
        }
        if result.as_ref().is_err_and(NetError::is_transport) {
            lock(&self.conns).remove(&target);
        }
        result
    }

    /// How long a tripped breaker stays open before the next call
    /// probes the peer again.
    fn cooldown(&self) -> std::time::Duration {
        self.policy.backoff_max.max(std::time::Duration::from_millis(100))
    }

    /// The table's live latency estimates, for introspection.
    pub fn load(&self) -> &LoadTracker {
        &self.load
    }

    /// One synchronous request/response exchange with server `target`,
    /// with transparent reconnect-and-retry for transient failures. A
    /// typed remote error becomes [`NetError::Remote`].
    ///
    /// A peer whose breaker is open fails fast with a typed
    /// `NoSuchServer` error; exhausting the retry budget on transport
    /// errors trips the breaker, and any success closes it.
    pub fn call(&self, target: u32, msg: &Message) -> Result<Message, NetError> {
        self.call_traced(target, msg, None)
    }

    /// [`PeerTable::call`] carrying an optional request trace id; the
    /// id is forwarded only over links whose peer advertised
    /// [`CAP_TRACE`], so legacy peers keep seeing legacy frames.
    pub fn call_traced(
        &self,
        target: u32,
        msg: &Message,
        trace: Option<u64>,
    ) -> Result<Message, NetError> {
        self.call_opts(target, msg, trace, None)
    }

    /// [`PeerTable::call_traced`] additionally carrying the request's
    /// absolute deadline: the *remaining* budget is stamped on the
    /// outgoing frame (links whose peer advertised [`CAP_DEADLINE`]
    /// only), and a budget that is already spent fails locally with
    /// the typed [`ErrorCode::Overloaded`] instead of burning a peer
    /// round-trip.
    pub fn call_opts(
        &self,
        target: u32,
        msg: &Message,
        trace: Option<u64>,
        deadline: Option<Instant>,
    ) -> Result<Message, NetError> {
        if let Some(&until) = lock(&self.downs).get(&target) {
            if Instant::now() < until {
                return Err(NetError::Remote {
                    code: ErrorCode::NoSuchServer,
                    message: format!("peer {target} unreachable (circuit open)"),
                });
            }
        }
        // A budget that is already spent skips the retry loop: the
        // typed `Overloaded` it mints is transient *to the client*
        // (which may retry with a fresh deadline), but retrying here
        // would only burn backoff on a request the caller abandoned.
        if remaining_budget_ms(deadline) == Some(0) {
            return self.call_once(target, msg, trace, deadline);
        }
        let mut attempts = 0u64;
        let result = self.policy.retry(|| {
            attempts += 1;
            self.call_once(target, msg, trace, deadline)
        });
        if attempts > 1 {
            self.metrics.counter("dasd_peer_retries_total", &[]).add(attempts - 1);
        }
        match &result {
            Err(e) if e.is_transport() => {
                lock(&self.downs).insert(target, Instant::now() + self.cooldown());
                self.metrics.counter("dasd_peer_breaker_trips_total", &[]).inc();
            }
            _ => {
                lock(&self.downs).remove(&target);
            }
        }
        result
    }

    /// Whether each peer's circuit breaker is currently open, for
    /// live introspection. The self entry is always closed.
    pub fn breaker_states(&self) -> Vec<(u32, bool)> {
        let now = Instant::now();
        let downs = lock(&self.downs);
        (0..self.addrs.len() as u32)
            .map(|id| (id, downs.get(&id).is_some_and(|&until| now < until)))
            .collect()
    }

    /// Fetch one strip of `file` from `target`.
    pub fn get_strip(&self, target: u32, file: u32, strip: u64) -> Result<Vec<u8>, NetError> {
        self.get_strip_traced(target, file, strip, None)
    }

    /// [`PeerTable::get_strip`] carrying an optional trace id.
    pub fn get_strip_traced(
        &self,
        target: u32,
        file: u32,
        strip: u64,
        trace: Option<u64>,
    ) -> Result<Vec<u8>, NetError> {
        self.get_strip_opts(target, file, strip, trace, None)
    }

    /// [`PeerTable::get_strip_traced`] additionally forwarding the
    /// request's remaining deadline budget.
    pub fn get_strip_opts(
        &self,
        target: u32,
        file: u32,
        strip: u64,
        trace: Option<u64>,
        deadline: Option<Instant>,
    ) -> Result<Vec<u8>, NetError> {
        match self.call_opts(target, &Message::GetStrip { file, strip }, trace, deadline)? {
            Message::StripData { payload } => Ok(payload),
            other => Err(NetError::Unexpected { opcode: other.opcode() }),
        }
    }

    /// Fetch one strip of `file` from any of `holders`, in order —
    /// the replica-failover read. Non-transient remote errors from a
    /// holder fail over to the next holder too (a server that lost the
    /// strip is as useless as a dead one); only running out of holders
    /// is fatal. Reports which holder served via the second tuple
    /// element (`Some(primary)` position 0 means no failover).
    pub fn get_strip_failover(
        &self,
        holders: &[u32],
        file: u32,
        strip: u64,
    ) -> Result<(Vec<u8>, usize), NetError> {
        self.get_strip_failover_traced(holders, file, strip, None)
    }

    /// [`PeerTable::get_strip_failover`] carrying an optional trace
    /// id. A read served by anything but the first holder tried bumps
    /// `dasd_peer_failovers_total`.
    pub fn get_strip_failover_traced(
        &self,
        holders: &[u32],
        file: u32,
        strip: u64,
        trace: Option<u64>,
    ) -> Result<(Vec<u8>, usize), NetError> {
        self.get_strip_failover_opts(holders, file, strip, trace, None)
    }

    /// [`PeerTable::get_strip_failover_traced`] additionally
    /// forwarding the remaining deadline budget. The walk order is the
    /// caller's holder list **reordered by observed load**: each
    /// peer's latency EWMA scores it, lightest first, with unsampled
    /// peers keeping their caller-given (primary-first) positions — so
    /// a cold table walks primaries exactly as before, and a warmed-up
    /// table routes dependence fetches around a straggler instead of
    /// paying its tail on every strip.
    pub fn get_strip_failover_opts(
        &self,
        holders: &[u32],
        file: u32,
        strip: u64,
        trace: Option<u64>,
        deadline: Option<Instant>,
    ) -> Result<(Vec<u8>, usize), NetError> {
        let mut walk: Vec<u32> =
            holders.iter().copied().filter(|&h| h != self.self_id).collect();
        self.load.order_by_load(&mut walk, |&h| h as usize);
        let mut last = None;
        for (pos, &holder) in walk.iter().enumerate() {
            match self.get_strip_opts(holder, file, strip, trace, deadline) {
                Ok(payload) => {
                    if pos > 0 {
                        self.metrics.counter("dasd_peer_failovers_total", &[]).inc();
                    }
                    return Ok((payload, pos));
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            NetError::Protocol(format!("strip {strip}: no remote holder to fetch from"))
        }))
    }

    /// [`PeerTable::get_strip_failover_opts`] recording one
    /// `peer_fetch` child span (under `parent`, classed `op`) into the
    /// attached span store — covering the whole failover walk, success
    /// or failure, so a fetch that burned the retry budget across
    /// three dead holders is attributed at its true cost. Without an
    /// attached store or a trace id this is exactly the unspanned
    /// call.
    #[allow(clippy::too_many_arguments)]
    pub fn get_strip_failover_spanned(
        &self,
        holders: &[u32],
        file: u32,
        strip: u64,
        trace: Option<u64>,
        deadline: Option<Instant>,
        parent: u32,
        op: das_obs::OpClass,
    ) -> Result<(Vec<u8>, usize), NetError> {
        let started = Instant::now();
        let result = self.get_strip_failover_opts(holders, file, strip, trace, deadline);
        let dur_us = started.elapsed().as_micros() as u64;
        self.metrics
            .histogram("dasd_stage_duration_us", &[("stage", "peer_fetch"), ("op", op.name())])
            .observe(dur_us);
        if let (Some(store), Some(t)) = (&self.spans, trace) {
            let start_us = store.now_us().saturating_sub(dur_us);
            store.record(
                t,
                parent,
                das_obs::Stage::PeerFetch,
                op,
                das_obs::NOTE_NONE,
                start_us,
                dur_us,
            );
        }
        result
    }

    /// Store one strip of `file` on `target` (replica forwarding).
    pub fn put_strip(
        &self,
        target: u32,
        file: u32,
        strip: u64,
        payload: Vec<u8>,
    ) -> Result<(), NetError> {
        self.put_strip_traced(target, file, strip, payload, None)
    }

    /// [`PeerTable::put_strip`] carrying an optional trace id.
    pub fn put_strip_traced(
        &self,
        target: u32,
        file: u32,
        strip: u64,
        payload: Vec<u8>,
        trace: Option<u64>,
    ) -> Result<(), NetError> {
        match self.call_traced(target, &Message::PutStrip { file, strip, payload }, trace)? {
            Message::PutStripOk => Ok(()),
            other => Err(NetError::Unexpected { opcode: other.opcode() }),
        }
    }
}
