//! Server→server connections: lazy, persistent, one per peer.
//!
//! A `dasd` talks to its peers for three reasons, all mirroring the
//! in-process runtime's traffic classes: dependence fetches during an
//! offloaded execution (the NAS cost the predictor prices), pulls
//! during redistribution's prepare phase, and forwarding of output
//! replica strips. Each peer link is opened on first use, greets with
//! `Hello { role: Server }`, and stays up for the daemon's lifetime;
//! concurrent workers serialize on the link's mutex, which mirrors the
//! synchronous per-strip RPCs the paper's model assumes.

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use crate::codec::{read_message, write_message, CountingStream, NetError};
use crate::proto::{ErrorCode, Message, Role};
use crate::server::{ConnClass, StatsRegistry};

/// Addresses of every server in the cluster, indexed by server id,
/// plus the live outbound connections of one daemon.
pub struct PeerTable {
    self_id: u32,
    addrs: Vec<String>,
    conns: Mutex<HashMap<u32, Arc<Mutex<CountingStream<TcpStream>>>>>,
    stats: Arc<StatsRegistry>,
}

impl PeerTable {
    /// A table for server `self_id` in a cluster whose `addrs[i]` is
    /// the listen address of server `i`. Outbound traffic is counted
    /// into `stats` under the server↔server class.
    pub fn new(self_id: u32, addrs: Vec<String>, stats: Arc<StatsRegistry>) -> Self {
        PeerTable { self_id, addrs, conns: Mutex::new(HashMap::new()), stats }
    }

    /// Number of servers in the cluster.
    pub fn cluster_size(&self) -> u32 {
        self.addrs.len() as u32
    }

    /// This daemon's id.
    pub fn self_id(&self) -> u32 {
        self.self_id
    }

    fn conn(&self, target: u32) -> Result<Arc<Mutex<CountingStream<TcpStream>>>, NetError> {
        if target == self.self_id {
            return Err(NetError::Protocol("refusing peer connection to self".into()));
        }
        let addr = self
            .addrs
            .get(target as usize)
            .ok_or(NetError::Remote {
                code: ErrorCode::NoSuchServer,
                message: format!("no server {target} in a {}-server cluster", self.addrs.len()),
            })?
            .clone();
        if let Some(c) = self.conns.lock().unwrap().get(&target) {
            return Ok(Arc::clone(c));
        }
        // Connect outside the map lock; a racing worker may connect
        // twice, in which case the loser's link is dropped unused.
        let mut stream = CountingStream::new(TcpStream::connect(&addr)?);
        self.stats.register(ConnClass::Server, stream.bytes_in(), stream.bytes_out());
        write_message(&mut stream, &Message::Hello { role: Role::Server, peer_id: self.self_id })?;
        match read_message(&mut stream)? {
            Some(Message::HelloOk { .. }) => {}
            Some(other) => return Err(NetError::Unexpected { opcode: other.opcode() }),
            None => {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed during handshake",
                )))
            }
        }
        let conn = Arc::new(Mutex::new(stream));
        Ok(Arc::clone(
            self.conns.lock().unwrap().entry(target).or_insert(conn),
        ))
    }

    /// One synchronous request/response exchange with server `target`.
    /// A typed remote error becomes [`NetError::Remote`].
    pub fn call(&self, target: u32, msg: &Message) -> Result<Message, NetError> {
        let conn = self.conn(target)?;
        let mut stream = conn.lock().unwrap();
        let result = (|| {
            write_message(&mut *stream, msg)?;
            match read_message(&mut *stream)? {
                Some(Message::Error { code, message }) => Err(NetError::Remote { code, message }),
                Some(reply) => Ok(reply),
                None => Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-call",
                ))),
            }
        })();
        if matches!(result, Err(NetError::Io(_) | NetError::Protocol(_))) {
            // The link is in an unknown state; drop it so the next
            // call reconnects.
            self.conns.lock().unwrap().remove(&target);
        }
        result
    }

    /// Fetch one strip of `file` from `target`.
    pub fn get_strip(&self, target: u32, file: u32, strip: u64) -> Result<Vec<u8>, NetError> {
        match self.call(target, &Message::GetStrip { file, strip })? {
            Message::StripData { payload } => Ok(payload),
            other => Err(NetError::Unexpected { opcode: other.opcode() }),
        }
    }

    /// Store one strip of `file` on `target` (replica forwarding).
    pub fn put_strip(&self, target: u32, file: u32, strip: u64, payload: Vec<u8>) -> Result<(), NetError> {
        match self.call(target, &Message::PutStrip { file, strip, payload })? {
            Message::PutStripOk => Ok(()),
            other => Err(NetError::Unexpected { opcode: other.opcode() }),
        }
    }
}
