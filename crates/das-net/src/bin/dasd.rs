//! `dasd` — the active-storage server daemon.
//!
//! ```text
//! dasd --id 0 --cluster 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004
//! ```
//!
//! Listens on `cluster[id]`, serves strips and offloaded kernels, and
//! exits when a client sends Shutdown.
//!
//! Fault injection (for chaos testing): `--fault <spec>` (or the
//! `DASD_FAULT` env var) loads a deterministic fault plan, seeded by
//! `--fault-seed`/`DASD_FAULT_SEED`, e.g.
//! `--fault client:drop:x2,server:retryable:p0.25`.
//!
//! Diagnostics are structured events from `das-obs`: `--log-level
//! trace|debug|info|warn|error|off` (or the `DASD_LOG` env var)
//! selects verbosity, `DASD_LOG_FORMAT=json` switches to JSON lines.

use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

use das_net::{spawn, DasdConfig, Engine, FaultPlan};
use das_obs::{event, Level};

fn usage() -> ! {
    println!(
        "usage: dasd --id <N> --cluster <addr0,addr1,...> [--pool <threads>]\n\
         \x20           [--engine <evloop|threads>] [--max-backlog <N>]\n\
         \x20           [--fault <spec>] [--fault-seed <N>]\n\
         \x20           [--bind-retries <N>] [--log-level <level>]\n\
         \n\
         --id           this server's index into the cluster address list\n\
         --cluster      listen address of every server, comma-separated, in id order\n\
         --pool         connection-handler threads (default 16)\n\
         --max-backlog  admission-control bound: requests past this many already\n\
         \x20            in flight are shed with the typed, retryable Overloaded\n\
         \x20            error (default 256)\n\
         --engine       connection engine: evloop (sharded event loop, default)\n\
         \x20            or threads (thread per connection)  (env: DASD_ENGINE)\n\
         --fault        fault-injection spec: comma-separated class:action[:xN][:pF]\n\
         \x20            classes accept|client|server|any|redist|exec|get; actions\n\
         \x20            refuse|drop|delay=MS|retryable|corrupt  (env: DASD_FAULT)\n\
         --fault-seed   RNG seed for probabilistic fault rules (env: DASD_FAULT_SEED)\n\
         --bind-retries retry a failed bind this many times, 1s apart (default 0)\n\
         --log-level    trace|debug|info|warn|error|off (env: DASD_LOG; default info)"
    );
    exit(2);
}

fn main() {
    das_obs::log::init_from_env();

    let mut id: Option<u32> = None;
    let mut cluster: Option<Vec<String>> = None;
    let mut pool = 16usize;
    let mut max_backlog: Option<usize> = None;
    let mut fault_spec = std::env::var("DASD_FAULT").ok();
    let mut fault_seed: u64 = std::env::var("DASD_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let mut bind_retries = 0u32;
    let mut engine =
        std::env::var("DASD_ENGINE").ok().and_then(|v| Engine::parse(&v)).unwrap_or_default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--id" => id = args.next().and_then(|v| v.parse().ok()),
            "--engine" => match args.next().and_then(|v| Engine::parse(&v)) {
                Some(e) => engine = e,
                None => usage(),
            },
            "--cluster" => {
                cluster = args.next().map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
            }
            "--pool" => match args.next().and_then(|v| v.parse().ok()) {
                Some(p) => pool = p,
                None => usage(),
            },
            "--max-backlog" => match args.next().and_then(|v| v.parse().ok()) {
                Some(b) => max_backlog = Some(b),
                None => usage(),
            },
            "--fault" => match args.next() {
                Some(spec) => fault_spec = Some(spec),
                None => usage(),
            },
            "--fault-seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => fault_seed = s,
                None => usage(),
            },
            "--bind-retries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => bind_retries = n,
                None => usage(),
            },
            "--log-level" => match args.next() {
                Some(v) if v.eq_ignore_ascii_case("off") => das_obs::log::disable(),
                Some(v) => match Level::parse(&v) {
                    Some(l) => das_obs::set_level(l),
                    None => usage(),
                },
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                event(
                    Level::Error,
                    "das.daemon",
                    "unknown argument",
                    &[("arg", other.to_string())],
                );
                usage();
            }
        }
    }

    let (Some(id), Some(cluster)) = (id, cluster) else { usage() };
    if (id as usize) >= cluster.len() {
        event(
            Level::Error,
            "das.daemon",
            "--id is outside the cluster",
            &[("id", id.to_string()), ("servers", cluster.len().to_string())],
        );
        exit(2);
    }

    let fault = match fault_spec.as_deref() {
        None | Some("") => FaultPlan::none(),
        Some(spec) => match FaultPlan::parse(spec, fault_seed) {
            Ok(plan) => {
                event(
                    Level::Info,
                    "das.daemon",
                    "fault injection active",
                    &[
                        ("server", id.to_string()),
                        ("spec", spec.to_string()),
                        ("seed", fault_seed.to_string()),
                    ],
                );
                plan
            }
            Err(e) => {
                event(Level::Error, "das.daemon", "bad --fault spec", &[("error", e.to_string())]);
                exit(2);
            }
        },
    };

    // Bind, optionally retrying — a restarting daemon often races the
    // kernel's TIME_WAIT release of its old port.
    let listen = cluster[id as usize].clone();
    let mut listener = None;
    for attempt in 0..=bind_retries {
        match TcpListener::bind(&listen) {
            Ok(l) => {
                listener = Some(l);
                break;
            }
            Err(e) => {
                event(
                    Level::Error,
                    "das.daemon",
                    "cannot listen",
                    &[
                        ("addr", listen.clone()),
                        ("error", e.to_string()),
                        ("attempt", format!("{}/{}", attempt + 1, bind_retries + 1)),
                    ],
                );
                if attempt < bind_retries {
                    std::thread::sleep(Duration::from_secs(1));
                }
            }
        }
    }
    let Some(listener) = listener else { exit(1) };
    event(
        Level::Info,
        "das.daemon",
        "listening",
        &[
            ("server", id.to_string()),
            ("addr", listen.clone()),
            ("cluster", cluster.len().to_string()),
        ],
    );

    let mut cfg = DasdConfig::new(id, cluster).with_fault(Arc::new(fault)).with_engine(engine);
    cfg.pool = pool;
    if let Some(b) = max_backlog {
        cfg = cfg.with_max_backlog(b);
    }
    match spawn(cfg, listener) {
        Ok(handle) => handle.join(),
        Err(e) => {
            event(Level::Error, "das.daemon", "failed to start", &[("error", e.to_string())]);
            exit(1);
        }
    }
    event(Level::Info, "das.daemon", "shut down", &[("server", id.to_string())]);
}
