//! `dasd` — the active-storage server daemon.
//!
//! ```text
//! dasd --id 0 --cluster 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003,127.0.0.1:7004
//! ```
//!
//! Listens on `cluster[id]`, serves strips and offloaded kernels, and
//! exits when a client sends Shutdown.

use std::net::TcpListener;
use std::process::exit;

use das_net::{spawn, DasdConfig};

fn usage() -> ! {
    eprintln!(
        "usage: dasd --id <N> --cluster <addr0,addr1,...> [--pool <threads>]\n\
         \n\
         --id       this server's index into the cluster address list\n\
         --cluster  listen address of every server, comma-separated, in id order\n\
         --pool     connection-handler threads (default 16)"
    );
    exit(2);
}

fn main() {
    let mut id: Option<u32> = None;
    let mut cluster: Option<Vec<String>> = None;
    let mut pool = 16usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--id" => id = args.next().and_then(|v| v.parse().ok()),
            "--cluster" => {
                cluster = args.next().map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
            }
            "--pool" => match args.next().and_then(|v| v.parse().ok()) {
                Some(p) => pool = p,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }

    let (Some(id), Some(cluster)) = (id, cluster) else { usage() };
    if (id as usize) >= cluster.len() {
        eprintln!("--id {id} is outside the {}-server cluster", cluster.len());
        exit(2);
    }

    let listen = cluster[id as usize].clone();
    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dasd: cannot listen on {listen}: {e}");
            exit(1);
        }
    };
    eprintln!("dasd {id}: listening on {listen} ({} servers in cluster)", cluster.len());

    let mut cfg = DasdConfig::new(id, cluster);
    cfg.pool = pool;
    match spawn(cfg, listener) {
        Ok(handle) => handle.join(),
        Err(e) => {
            eprintln!("dasd: failed to start: {e}");
            exit(1);
        }
    }
    eprintln!("dasd {id}: shut down");
}
