//! `das` — the active-storage client CLI.
//!
//! ```text
//! das ping    --cluster a,b,c,d
//! das put     --cluster ... --name dem.raw --strip-size 4096 --input dem.bin
//! das gen     --cluster ... --name dem.raw --strip-size 4096 --width 256 --height 128 [--seed 42]
//! das info    --cluster ... --name dem.raw
//! das get     --cluster ... --name dem.raw --output dem.bin
//! das exec    --cluster ... --name dem.raw --kernel gaussian-filter --width 256 --scheme das [--out NAME]
//! das stats   --cluster ...
//! das reset-stats --cluster ...
//! das shutdown    --cluster ...
//! ```

use std::collections::HashMap;
use std::process::exit;

use das_kernels::kernel_names;
use das_kernels::workload;
use das_net::{run_net_scheme, DasCluster, NetScheme, RetryPolicy};
use das_pfs::LayoutPolicy;

fn usage() -> ! {
    eprintln!(
        "usage: das <command> --cluster <addr0,addr1,...> [options]\n\
         \n\
         commands:\n\
         \x20 ping                         probe every server\n\
         \x20 put    --name N --strip-size S --input PATH [--policy rr|grouped:R|grouped-rep:R]\n\
         \x20 gen    --name N --strip-size S --width W --height H [--seed K] [--policy ...]\n\
         \x20 info   --name N               show a file's distribution\n\
         \x20 get    --name N --output PATH gather a file to a local path\n\
         \x20 exec   --name N --kernel K --width W --scheme ts|nas|das [--out NAME]\n\
         \x20 stats                        per-server wire-byte counters\n\
         \x20 reset-stats                  zero the counters\n\
         \x20 shutdown                     stop every daemon\n\
         \n\
         global options:\n\
         \x20 --attempts N     retry budget per call (default 4)\n\
         \x20 --timeout-ms MS  connect/read/write timeout per attempt (default 2000/15000/15000)\n\
         \n\
         kernels: {}",
        kernel_names().join(", ")
    );
    exit(2);
}

fn parse_policy(s: &str) -> Option<LayoutPolicy> {
    if s == "rr" || s == "round-robin" {
        return Some(LayoutPolicy::RoundRobin);
    }
    if let Some(r) = s.strip_prefix("grouped-rep:") {
        return r.parse().ok().map(|group| LayoutPolicy::GroupedReplicated { group });
    }
    if let Some(r) = s.strip_prefix("grouped:") {
        return r.parse().ok().map(|group| LayoutPolicy::Grouped { group });
    }
    None
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("das: {msg}");
    exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args.remove(0);

    let mut opts: HashMap<String, String> = HashMap::new();
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            eprintln!("expected --flag, got {flag:?}");
            usage();
        };
        let Some(value) = it.next() else {
            eprintln!("--{key} needs a value");
            usage();
        };
        opts.insert(key.to_string(), value);
    }

    let Some(cluster_arg) = opts.get("cluster") else {
        eprintln!("--cluster is required");
        usage();
    };
    let addrs: Vec<String> = cluster_arg.split(',').map(|s| s.trim().to_string()).collect();
    let mut policy = RetryPolicy::default();
    if let Some(a) = opts.get("attempts") {
        policy.max_attempts = a.parse().unwrap_or_else(|_| fail("bad --attempts"));
    }
    if let Some(t) = opts.get("timeout-ms") {
        let ms: u64 = t.parse().unwrap_or_else(|_| fail("bad --timeout-ms"));
        let d = std::time::Duration::from_millis(ms);
        policy.connect_timeout = d;
        policy.read_timeout = d;
        policy.write_timeout = d;
    }
    let mut cluster = match DasCluster::connect_with(&addrs, policy) {
        Ok(c) => c,
        Err(e) => fail(format!("connecting to cluster: {e}")),
    };
    for s in cluster.down_servers() {
        eprintln!("das: warning: server {s} ({}) is unreachable", addrs[s as usize]);
    }

    let req = |key: &str| -> &String {
        opts.get(key).unwrap_or_else(|| {
            eprintln!("--{key} is required for `{command}`");
            usage();
        })
    };

    match command.as_str() {
        "ping" => {
            cluster.ping_all().unwrap_or_else(|e| fail(e));
            println!("{} servers alive", addrs.len());
        }
        "put" | "gen" => {
            let name = req("name").clone();
            let strip_size: u32 = req("strip-size").parse().unwrap_or_else(|_| fail("bad --strip-size"));
            let policy = opts
                .get("policy")
                .map(|p| parse_policy(p).unwrap_or_else(|| fail(format!("bad --policy {p:?}"))))
                .unwrap_or(LayoutPolicy::RoundRobin);
            let data = if command == "put" {
                std::fs::read(req("input")).unwrap_or_else(|e| fail(format!("reading --input: {e}")))
            } else {
                let width: u64 = req("width").parse().unwrap_or_else(|_| fail("bad --width"));
                let height: u64 = req("height").parse().unwrap_or_else(|_| fail("bad --height"));
                let seed: u64 = opts.get("seed").map_or(42, |s| s.parse().unwrap_or(42));
                workload::fbm_dem(width, height, seed).to_bytes()
            };
            let file = cluster
                .create_file(&name, data.len() as u64, strip_size, policy)
                .unwrap_or_else(|e| fail(e));
            cluster.put_file(file, &data).unwrap_or_else(|e| fail(e));
            println!("stored {name:?} ({} bytes) as file {file}", data.len());
        }
        "info" => {
            let (file, dist) = cluster.lookup(req("name")).unwrap_or_else(|e| fail(e));
            println!(
                "file {file}: {} bytes, strip {} B, {} servers, layout {}",
                dist.file_len,
                dist.strip_size,
                dist.servers,
                dist.policy.name()
            );
        }
        "get" => {
            let (file, _) = cluster.lookup(req("name")).unwrap_or_else(|e| fail(e));
            let data = cluster.read_file(file).unwrap_or_else(|e| fail(e));
            std::fs::write(req("output"), &data).unwrap_or_else(|e| fail(format!("writing --output: {e}")));
            println!("wrote {} bytes", data.len());
        }
        "exec" => {
            let (file, _) = cluster.lookup(req("name")).unwrap_or_else(|e| fail(e));
            let kernel = req("kernel").clone();
            let width: u64 = req("width").parse().unwrap_or_else(|_| fail("bad --width"));
            let scheme = match req("scheme").as_str() {
                "ts" => NetScheme::Ts,
                "nas" => NetScheme::Nas,
                "das" => NetScheme::Das,
                other => fail(format!("bad --scheme {other:?} (want ts|nas|das)")),
            };
            let out_name = opts
                .get("out")
                .cloned()
                .unwrap_or_else(|| format!("{}.{}.out", req("name"), scheme.name().to_lowercase()));
            let report = run_net_scheme(&mut cluster, scheme, file, &out_name, &kernel, width)
                .unwrap_or_else(|e| fail(e));
            println!(
                "{} {} -> {out_name:?}: offloaded={} layout={} fingerprint={:#018x}",
                report.scheme.name(),
                report.kernel,
                report.offloaded,
                report.layout.name(),
                report.output_fingerprint
            );
            println!(
                "  wire bytes: client<->server {}  server<->server {} (redistribution {})",
                report.client_bytes, report.server_bytes, report.redistribution_bytes
            );
            let fetches: u64 = report.exec.iter().map(|e| e.dep_fetches).sum();
            let fetch_bytes: u64 = report.exec.iter().map(|e| e.dep_fetch_bytes).sum();
            if report.offloaded {
                println!("  dependence fetches: {fetches} ({fetch_bytes} bytes)");
            }
            for ev in &report.degradations {
                println!("  degradation: {} ({ev:?})", ev.tag());
            }
        }
        "stats" => {
            for (i, s) in cluster.stats().unwrap_or_else(|e| fail(e)).iter().enumerate() {
                println!(
                    "server {i}: client in/out {}/{}  server in/out {}/{}",
                    s.client_in, s.client_out, s.server_in, s.server_out
                );
            }
        }
        "reset-stats" => {
            cluster.reset_stats().unwrap_or_else(|e| fail(e));
            println!("counters zeroed");
        }
        "shutdown" => {
            cluster.shutdown_all().unwrap_or_else(|e| fail(e));
            println!("cluster shut down");
        }
        _ => usage(),
    }
}
