//! Deterministic fault injection for `dasd`.
//!
//! A [`FaultPlan`] is a list of rules a daemon consults at two points:
//! when it accepts a connection, and when it is about to answer a
//! request. Each rule names a connection class, an action, and how
//! often to fire (a countdown and/or a probability). Probabilistic
//! rules draw from the in-tree seeded `rand` shim, so a chaos run with
//! a fixed seed replays **identically** — no wall clock or OS
//! randomness anywhere in the plan.
//!
//! The five actions cover the failure modes the fault-tolerance layer
//! must survive:
//!
//! | action      | wire effect                                        |
//! |-------------|----------------------------------------------------|
//! | `refuse`    | accept then immediately close (connect-level death) |
//! | `drop`      | send a *partial* reply frame, then close (mid-frame cut) |
//! | `delay=MS`  | sleep before answering (straggler / timeout path)  |
//! | `retryable` | answer `Error { code: Retryable }` (transient refusal) |
//! | `corrupt`   | answer with a flipped CRC trailer byte (corruption) |
//!
//! Plans are parsed from the `dasd --fault` flag / `DASD_FAULT` env
//! var; see [`FaultPlan::parse`] for the grammar.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::server::ConnClass;

/// Which connections a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// The accept path, before any frame is exchanged.
    Accept,
    /// Requests on client↔server connections.
    Client,
    /// Requests on server↔server connections.
    Server,
    /// Requests on either connection class (not the accept path).
    AnyRequest,
    /// Redistribution requests (`RedistPrepare`/`RedistCommit`) from
    /// clients. Peer traffic is exempt so a chaos run stays
    /// deterministic at the request level.
    Redist,
    /// `Execute` requests from clients.
    Exec,
    /// `GetStrip` requests from clients.
    Get,
}

impl FaultClass {
    /// Every fault class, in the order `docs/PROTOCOL.md` documents
    /// them. The protocol-conformance pass iterates this to prove the
    /// doc and the [`FaultPlan::parse`] grammar agree.
    pub const ALL: [FaultClass; 7] = [
        FaultClass::Accept,
        FaultClass::Client,
        FaultClass::Server,
        FaultClass::AnyRequest,
        FaultClass::Redist,
        FaultClass::Exec,
        FaultClass::Get,
    ];

    /// The spelling [`FaultPlan::parse`] accepts for this class.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::Accept => "accept",
            FaultClass::Client => "client",
            FaultClass::Server => "server",
            FaultClass::AnyRequest => "any",
            FaultClass::Redist => "redist",
            FaultClass::Exec => "exec",
            FaultClass::Get => "get",
        }
    }
}

/// What a firing rule does to the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Close the connection immediately after accepting it.
    RefuseAccept,
    /// Write roughly half of the reply frame, then close the socket.
    DropMidFrame,
    /// Sleep this many milliseconds before answering normally.
    Delay {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// Answer with a typed transient error instead of the real reply.
    Retryable,
    /// Answer with the real reply but a corrupted CRC trailer.
    CorruptCrc,
}

/// One injection rule: class + action + firing budget.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Connections the rule matches.
    pub class: FaultClass,
    /// What happens when it fires.
    pub action: FaultAction,
    /// How many times the rule may fire (`u64::MAX` = unlimited).
    pub count: u64,
    /// Probability of firing when eligible (1.0 = always).
    pub prob: f64,
}

/// Where the daemon is when it consults the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// A connection was just accepted.
    Accept,
    /// A request is about to be answered.
    Request {
        /// The connection's traffic class.
        class: ConnClass,
        /// The request's opcode (drives the op-targeted classes).
        opcode: u8,
    },
}

/// A parsed, seeded fault plan. Cheap to share (`Arc`) between the
/// daemon's accept loop and its connection handlers; the per-rule
/// countdowns and the RNG are interior-mutable.
#[derive(Debug)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    remaining: Vec<AtomicU64>,
    fired: Vec<AtomicU64>,
    rng: Mutex<StdRng>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: never injects anything.
    pub fn none() -> Self {
        FaultPlan::from_rules(Vec::new(), 0)
    }

    /// Build a plan from explicit rules and an RNG seed (used only by
    /// probabilistic rules).
    pub fn from_rules(rules: Vec<FaultRule>, seed: u64) -> Self {
        let remaining = rules.iter().map(|r| AtomicU64::new(r.count)).collect();
        let fired = rules.iter().map(|_| AtomicU64::new(0)).collect();
        FaultPlan { rules, remaining, fired, rng: Mutex::new(StdRng::seed_from_u64(seed)) }
    }

    /// Parse a plan spec: comma-separated rules, each
    /// `class:action[:modifier]*`.
    ///
    /// * class — `accept`, `client`, `server`, `any`, or an
    ///   op-targeted class hitting only client requests of one kind:
    ///   `redist` (`RedistPrepare`/`RedistCommit`), `exec`
    ///   (`Execute`), `get` (`GetStrip`)
    /// * action — `refuse` (accept class only), `drop`, `delay=MS`,
    ///   `retryable`, `corrupt`
    /// * modifiers — `xN` (fire at most N times; default unlimited)
    ///   and `pF` (fire with probability F; default 1.0)
    ///
    /// Examples: `client:drop:x2`, `server:retryable:p0.25`,
    /// `accept:refuse`, `any:delay=50:x3`, `redist:retryable:x4`.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for rule_spec in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let mut parts = rule_spec.split(':');
            let class = match parts.next() {
                Some("accept") => FaultClass::Accept,
                Some("client") => FaultClass::Client,
                Some("server") => FaultClass::Server,
                Some("any") => FaultClass::AnyRequest,
                Some("redist") => FaultClass::Redist,
                Some("exec") => FaultClass::Exec,
                Some("get") => FaultClass::Get,
                other => return Err(format!("bad fault class {other:?} in {rule_spec:?}")),
            };
            let action = match parts.next() {
                Some("refuse") => FaultAction::RefuseAccept,
                Some("drop") => FaultAction::DropMidFrame,
                Some("retryable") => FaultAction::Retryable,
                Some("corrupt") => FaultAction::CorruptCrc,
                Some(a) if a.starts_with("delay=") => {
                    let millis = a["delay=".len()..]
                        .parse()
                        .map_err(|_| format!("bad delay in {rule_spec:?}"))?;
                    FaultAction::Delay { millis }
                }
                other => return Err(format!("bad fault action {other:?} in {rule_spec:?}")),
            };
            match (class, action) {
                (FaultClass::Accept, FaultAction::RefuseAccept | FaultAction::Delay { .. }) => {}
                (FaultClass::Accept, _) => {
                    return Err(format!(
                        "{rule_spec:?}: accept-class rules support only refuse/delay"
                    ))
                }
                (_, FaultAction::RefuseAccept) => {
                    return Err(format!("{rule_spec:?}: refuse applies only to the accept class"))
                }
                _ => {}
            }
            let mut count = u64::MAX;
            let mut prob = 1.0f64;
            for m in parts {
                if let Some(n) = m.strip_prefix('x') {
                    count = n.parse().map_err(|_| format!("bad count in {rule_spec:?}"))?;
                } else if let Some(p) = m.strip_prefix('p') {
                    prob = p.parse().map_err(|_| format!("bad probability in {rule_spec:?}"))?;
                    if !(0.0..=1.0).contains(&prob) {
                        return Err(format!("probability out of [0,1] in {rule_spec:?}"));
                    }
                } else {
                    return Err(format!("bad modifier {m:?} in {rule_spec:?}"));
                }
            }
            rules.push(FaultRule { class, action, count, prob });
        }
        Ok(FaultPlan::from_rules(rules, seed))
    }

    /// Whether the plan has no rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Consult the plan at `point`. The first matching rule with
    /// budget left (and a winning probability draw) fires and returns
    /// its action.
    pub fn decide(&self, point: FaultPoint) -> Option<FaultAction> {
        for (i, rule) in self.rules.iter().enumerate() {
            let matches = match (rule.class, point) {
                (FaultClass::Accept, FaultPoint::Accept) => true,
                (FaultClass::Client, FaultPoint::Request { class: ConnClass::Client, .. }) => true,
                (FaultClass::Server, FaultPoint::Request { class: ConnClass::Server, .. }) => true,
                (FaultClass::AnyRequest, FaultPoint::Request { .. }) => true,
                (FaultClass::Redist, FaultPoint::Request { class: ConnClass::Client, opcode }) => {
                    opcode == 0x20 || opcode == 0x22
                }
                (FaultClass::Exec, FaultPoint::Request { class: ConnClass::Client, opcode }) => {
                    opcode == 0x30
                }
                (FaultClass::Get, FaultPoint::Request { class: ConnClass::Client, opcode }) => {
                    opcode == 0x14
                }
                _ => false,
            };
            if !matches {
                continue;
            }
            if rule.prob < 1.0 && !self.rng.lock().unwrap_or_else(|e| e.into_inner()).gen_bool(rule.prob)
            {
                continue;
            }
            // Claim one unit of budget; a concurrent handler may win
            // the last unit, in which case this rule is spent.
            let claimed = self.remaining[i]
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                    if left == 0 {
                        None
                    } else if left == u64::MAX {
                        Some(u64::MAX) // unlimited: never decrement
                    } else {
                        Some(left - 1)
                    }
                })
                .is_ok();
            if claimed {
                self.fired[i].fetch_add(1, Ordering::SeqCst);
                return Some(rule.action);
            }
        }
        None
    }

    /// How many times each rule has fired, in rule order.
    pub fn fired(&self) -> Vec<u64> {
        self.fired.iter().map(|f| f.load(Ordering::SeqCst)).collect()
    }

    /// Total injections across all rules.
    pub fn total_fired(&self) -> u64 {
        self.fired().iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_enumerated_class_name_parses() {
        for class in FaultClass::ALL {
            // The accept path supports only refuse/delay actions.
            let action = if class == FaultClass::Accept { "refuse" } else { "retryable" };
            let plan = FaultPlan::parse(&format!("{}:{action}", class.name()), 0).unwrap();
            assert!(!plan.is_empty(), "class {:?}", class);
        }
    }

    #[test]
    fn parse_roundtrip_and_budget() {
        let plan = FaultPlan::parse("client:drop:x2,server:retryable,accept:refuse:x1", 7).unwrap();
        assert!(!plan.is_empty());
        // Client drops fire exactly twice.
        assert_eq!(plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x12 }), Some(FaultAction::DropMidFrame));
        assert_eq!(plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x12 }), Some(FaultAction::DropMidFrame));
        assert_eq!(plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x12 }), None);
        // Server rule is unlimited.
        for _ in 0..10 {
            assert_eq!(
                plan.decide(FaultPoint::Request { class: ConnClass::Server, opcode: 0x12 }),
                Some(FaultAction::Retryable)
            );
        }
        // Accept refusal fires once.
        assert_eq!(plan.decide(FaultPoint::Accept), Some(FaultAction::RefuseAccept));
        assert_eq!(plan.decide(FaultPoint::Accept), None);
        assert_eq!(plan.fired(), vec![2, 10, 1]);
        assert_eq!(plan.total_fired(), 13);
    }

    #[test]
    fn any_matches_both_request_classes_but_not_accept() {
        let plan = FaultPlan::parse("any:delay=5", 0).unwrap();
        assert_eq!(
            plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x12 }),
            Some(FaultAction::Delay { millis: 5 })
        );
        assert_eq!(
            plan.decide(FaultPoint::Request { class: ConnClass::Server, opcode: 0x12 }),
            Some(FaultAction::Delay { millis: 5 })
        );
        assert_eq!(plan.decide(FaultPoint::Accept), None);
    }

    #[test]
    fn op_targeted_classes_match_only_their_client_requests() {
        let plan = FaultPlan::parse("redist:retryable:x2,exec:drop:x1,get:delay=5", 0).unwrap();
        // Wrong opcode: nothing fires.
        assert_eq!(plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x12 }), None);
        // Server-class traffic is exempt even on matching opcodes.
        assert_eq!(plan.decide(FaultPoint::Request { class: ConnClass::Server, opcode: 0x30 }), None);
        assert_eq!(plan.decide(FaultPoint::Request { class: ConnClass::Server, opcode: 0x14 }), None);
        // Both redistribution phases hit the redist budget.
        assert_eq!(
            plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x20 }),
            Some(FaultAction::Retryable)
        );
        assert_eq!(
            plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x22 }),
            Some(FaultAction::Retryable)
        );
        assert_eq!(plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x20 }), None);
        assert_eq!(
            plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x30 }),
            Some(FaultAction::DropMidFrame)
        );
        assert_eq!(
            plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x14 }),
            Some(FaultAction::Delay { millis: 5 })
        );
        assert_eq!(plan.fired(), vec![2, 1, 1]);
    }

    #[test]
    fn probabilistic_rules_are_seed_deterministic() {
        let decide_all = |seed| {
            let plan = FaultPlan::parse("client:retryable:p0.5", seed).unwrap();
            (0..64)
                .map(|_| plan.decide(FaultPoint::Request { class: ConnClass::Client, opcode: 0x12 }).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(decide_all(42), decide_all(42), "same seed, same stream");
        assert_ne!(decide_all(42), decide_all(43), "different seed, different stream");
        let hits = decide_all(42).iter().filter(|&&h| h).count();
        assert!((10..=54).contains(&hits), "p=0.5 over 64 draws fired {hits} times");
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "bogus:drop",
            "client:refuse",          // refuse is accept-only
            "accept:corrupt",         // corrupt needs a reply to corrupt
            "client:drop:y3",         // unknown modifier
            "client:delay=abc",       // bad delay
            "client:retryable:p1.5",  // probability out of range
        ] {
            assert!(FaultPlan::parse(bad, 0).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn empty_spec_is_the_empty_plan() {
        let plan = FaultPlan::parse("", 0).unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.decide(FaultPoint::Accept), None);
    }
}
