//! Straggler tracking for the request path: per-server latency EWMAs
//! and the two decisions derived from them — **replica ordering**
//! (which holder to try first) and the **hedge delay** (how long to
//! wait on a chosen holder before racing the same request against the
//! next-best one).
//!
//! The estimator is the TCP RTT filter (RFC 6298 gains): an
//! exponentially weighted mean plus a mean-deviation term, updated
//! from the same call sites das-obs already times. Both consumers are
//! deliberately conservative:
//!
//! * Ordering demotes only clear stragglers: a holder is moved to the
//!   back of the walk only when its `mean + 2·dev` score exceeds a
//!   hysteresis multiple of the best sampled holder's. Healthy holders
//!   — and every unsampled one — keep the layout's primary-first
//!   order bit-for-bit, so ordinary latency jitter never reshuffles
//!   the walk, and a *dead* server (whose estimate froze at its last
//!   healthy value) is still attempted and surfaced through the
//!   failover machinery rather than silently routed around.
//! * The hedge delay is `mean + 4·dev` of the server being waited on
//!   (its RTO, in TCP terms), floored so a fast loopback cluster does
//!   not hedge every request, and capped so a wildly skewed estimate
//!   still hedges within a useful fraction of the caller's timeout.
//!   Until `MIN_SAMPLES` observations exist there is no estimate
//!   and no hedging — a cold client behaves exactly like a pre-hedge
//!   build.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// EWMA gain for the mean (TCP's 1/8).
const GAIN_MEAN: f64 = 0.125;
/// EWMA gain for the mean deviation (TCP's 1/4).
const GAIN_DEV: f64 = 0.25;
/// Observations a server needs before its estimate is trusted for
/// hedging decisions.
const MIN_SAMPLES: u64 = 4;
/// Never hedge sooner than this: on a healthy sub-millisecond cluster
/// a duplicate GetStrip per read would double the fleet's load for no
/// tail benefit.
const HEDGE_FLOOR: Duration = Duration::from_millis(2);
/// Never wait longer than this before hedging: a hedge that fires
/// after the caller's own timeout is no hedge at all.
const HEDGE_CAP: Duration = Duration::from_millis(250);
/// A holder is demoted in the replica walk only when its score exceeds
/// this multiple of the best sampled holder's — ordering reacts to
/// *stragglers*, not to ordinary jitter between healthy servers.
const ORDER_HYSTERESIS: f64 = 3.0;

/// Poison-recovering lock, same policy as the server's helper: the
/// tracker holds plain numeric state that is valid after any panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One server's latency estimate: exponentially weighted mean and
/// mean deviation, in microseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ewma {
    mean_us: f64,
    dev_us: f64,
    samples: u64,
}

impl Ewma {
    /// An empty estimator (no observations).
    pub fn new() -> Ewma {
        Ewma::default()
    }

    /// Feed one observed request latency.
    pub fn observe(&mut self, latency: Duration) {
        let us = latency.as_secs_f64() * 1e6;
        if self.samples == 0 {
            self.mean_us = us;
            self.dev_us = us / 2.0;
        } else {
            let err = us - self.mean_us;
            self.mean_us += GAIN_MEAN * err;
            self.dev_us += GAIN_DEV * (err.abs() - self.dev_us);
        }
        self.samples = self.samples.saturating_add(1);
    }

    /// Smoothed mean latency in microseconds (0.0 when unsampled).
    pub fn mean_us(&self) -> f64 {
        self.mean_us
    }

    /// Smoothed mean deviation in microseconds.
    pub fn dev_us(&self) -> f64 {
        self.dev_us
    }

    /// Observations fed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The load score used for replica ordering: `mean + 2·dev`.
    /// Unsampled servers score 0, so a stable sort leaves them in
    /// their original (primary-first) positions.
    pub fn score_us(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.mean_us + 2.0 * self.dev_us
        }
    }

    /// The p99-ish wait before hedging: `mean + 4·dev` (TCP's RTO),
    /// clamped to `[HEDGE_FLOOR, HEDGE_CAP]`. `None` until
    /// `MIN_SAMPLES` observations exist.
    pub fn hedge_delay(&self) -> Option<Duration> {
        if self.samples < MIN_SAMPLES {
            return None;
        }
        let us = self.mean_us + 4.0 * self.dev_us;
        let d = Duration::from_micros(us.max(0.0) as u64);
        Some(d.clamp(HEDGE_FLOOR, HEDGE_CAP))
    }
}

/// Shared per-server latency estimates for one cluster view: the
/// client keeps one over its servers, each daemon keeps one over its
/// peers. Interior mutability so read paths holding `&self` can still
/// record latencies.
#[derive(Debug)]
pub struct LoadTracker {
    /// Leaf lock (nothing else is acquired while held): one EWMA slot
    /// per server id.
    ewma: Mutex<Vec<Ewma>>,
}

impl LoadTracker {
    /// A tracker over `servers` slots, all unsampled.
    pub fn new(servers: usize) -> LoadTracker {
        LoadTracker { ewma: Mutex::new(vec![Ewma::new(); servers]) }
    }

    /// Record one observed request latency against `server`. Out of
    /// range ids are ignored (a hot-reconfigured cluster view).
    pub fn observe(&self, server: usize, latency: Duration) {
        let mut slots = lock(&self.ewma);
        if let Some(e) = slots.get_mut(server) {
            e.observe(latency);
        }
    }

    /// Snapshot of one server's estimator (default when out of range).
    pub fn get(&self, server: usize) -> Ewma {
        lock(&self.ewma).get(server).copied().unwrap_or_default()
    }

    /// Demote clear stragglers to the back of `items` (slowest last),
    /// keeping everything else — healthy and unsampled servers alike —
    /// in its original order. A server is a straggler only when its
    /// load score exceeds `ORDER_HYSTERESIS` times the best sampled
    /// score in the walk, so a cold tracker is a no-op, jitter between
    /// healthy servers never reshuffles the primary-first walk, and a
    /// dead server (estimate frozen at its last healthy value) is
    /// still attempted first and surfaced via failover.
    pub fn order_by_load<T>(&self, items: &mut [T], server_of: impl Fn(&T) -> usize) {
        let slots = lock(&self.ewma);
        let score = |t: &T| slots.get(server_of(t)).map_or(0.0, Ewma::score_us);
        let best = items
            .iter()
            .map(&score)
            .filter(|&s| s > 0.0)
            .min_by(f64::total_cmp);
        let Some(best) = best else { return };
        items.sort_by_key(|t| {
            let s = score(t);
            s > best * ORDER_HYSTERESIS
        });
        // Stragglers (now the tail) go slowest-last between themselves.
        let cut = items.iter().position(|t| score(t) > best * ORDER_HYSTERESIS);
        if let Some(cut) = cut {
            items[cut..].sort_by(|a, b| score(a).total_cmp(&score(b)));
        }
    }

    /// How long to wait on `server` before firing a hedged duplicate
    /// at the next-best holder. Falls back to the slowest *sampled*
    /// server's estimate when `server` itself is unsampled (first
    /// request after a failover still deserves a hedge); `None` when
    /// the whole tracker is cold.
    pub fn hedge_delay(&self, server: usize) -> Option<Duration> {
        let slots = lock(&self.ewma);
        if let Some(d) = slots.get(server).and_then(Ewma::hedge_delay) {
            return Some(d);
        }
        slots.iter().filter_map(Ewma::hedge_delay).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn ewma_tracks_mean_and_deviation() {
        let mut e = Ewma::new();
        assert_eq!(e.samples(), 0);
        assert_eq!(e.score_us(), 0.0);
        for _ in 0..32 {
            e.observe(ms(10));
        }
        assert!((e.mean_us() - 10_000.0).abs() < 1_000.0, "mean drifted: {}", e.mean_us());
        // Steady input → deviation decays toward zero.
        assert!(e.dev_us() < 2_000.0, "dev did not decay: {}", e.dev_us());
        // A latency spike moves the mean slowly but the dev fast.
        let before = e.mean_us();
        e.observe(ms(200));
        assert!(e.mean_us() > before);
        assert!(e.mean_us() < 50_000.0, "one spike must not dominate the mean");
        assert!(e.dev_us() > 10_000.0, "dev must react to the spike");
    }

    #[test]
    fn hedge_delay_needs_samples_and_stays_clamped() {
        let mut e = Ewma::new();
        assert_eq!(e.hedge_delay(), None);
        for _ in 0..MIN_SAMPLES {
            e.observe(Duration::from_micros(50));
        }
        // Fast cluster: clamped up to the floor.
        assert_eq!(e.hedge_delay(), Some(HEDGE_FLOOR));
        let mut slow = Ewma::new();
        for _ in 0..MIN_SAMPLES {
            slow.observe(Duration::from_secs(10));
        }
        // Pathological estimate: clamped down to the cap.
        assert_eq!(slow.hedge_delay(), Some(HEDGE_CAP));
    }

    #[test]
    fn cold_tracker_preserves_primary_first_order() {
        let t = LoadTracker::new(4);
        let mut holders = vec![2usize, 0, 3, 1];
        t.order_by_load(&mut holders, |&s| s);
        assert_eq!(holders, vec![2, 0, 3, 1], "cold tracker must not reorder");
        assert_eq!(t.hedge_delay(0), None, "cold tracker must not hedge");
    }

    #[test]
    fn slow_server_sorts_last_and_healthy_order_is_kept() {
        let t = LoadTracker::new(4);
        for _ in 0..8 {
            t.observe(1, ms(300)); // straggler
            t.observe(3, ms(1));
        }
        let mut holders = vec![1usize, 0, 3, 2];
        t.order_by_load(&mut holders, |&s| s);
        // Only the straggler moves: unsampled 0 and 2 and sampled-fast
        // 3 keep their original relative order, 1 is demoted to last.
        assert_eq!(holders, vec![0, 3, 2, 1]);
    }

    #[test]
    fn healthy_jitter_does_not_reorder_the_walk() {
        let t = LoadTracker::new(3);
        for _ in 0..8 {
            t.observe(0, ms(11)); // a touch slower than its peers…
            t.observe(1, ms(9));
            t.observe(2, ms(10));
        }
        let mut holders = vec![0usize, 1, 2];
        t.order_by_load(&mut holders, |&s| s);
        // …but well inside the hysteresis band: primary-first order
        // is kept, so placement affinity is not churned by jitter.
        assert_eq!(holders, vec![0, 1, 2]);

        // A genuinely loaded server (≫ hysteresis × best) does move.
        let t2 = LoadTracker::new(2);
        for _ in 0..8 {
            t2.observe(0, ms(40));
            t2.observe(1, ms(1));
        }
        let mut holders = vec![0usize, 1];
        t2.order_by_load(&mut holders, |&s| s);
        assert_eq!(holders, vec![1, 0]);
    }

    #[test]
    fn hedge_delay_falls_back_to_slowest_sampled_peer() {
        let t = LoadTracker::new(3);
        for _ in 0..8 {
            t.observe(2, ms(40));
        }
        // Server 0 was never sampled: hedge using the fleet's worst
        // known estimate rather than not at all.
        let d = t.hedge_delay(0).expect("fallback estimate");
        assert!(d >= ms(40), "fallback should reflect the sampled peer: {d:?}");
        // Out-of-range ids neither panic nor observe.
        t.observe(99, ms(1));
        assert_eq!(t.get(99).samples(), 0);
    }
}
