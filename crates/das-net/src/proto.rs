//! The das-net wire protocol: message types and payload encoding.
//!
//! Every message travels in one frame (see [`crate::codec`]): a
//! 12-byte header — magic `"DASN"`, protocol version, opcode, flags,
//! payload length — followed by the payload encoded by this module.
//! Integers are little-endian; strings are length-prefixed (`u16`)
//! UTF-8; strip payloads are length-prefixed (`u32`) byte blobs.
//!
//! The full frame layout and per-RPC semantics are documented in
//! `docs/PROTOCOL.md`.

use das_pfs::{DistributionInfo, LayoutPolicy};

/// Frame magic, first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"DASN";
/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;
/// Upper bound on a frame payload (64 MiB). Caps allocation from a
/// hostile or corrupted length field; comfortably above the largest
/// legitimate payload (one strip plus framing).
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;
/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 12;

/// Capability bit advertised in [`Message::Hello`]/[`Message::HelloOk`]:
/// the sender emits and verifies the CRC32 frame trailer (header flag
/// `FLAG_CRC` in [`crate::codec`]). Every in-tree build sets it; the
/// bit exists so a future rolling upgrade can negotiate the trailer
/// instead of hard-failing on version skew.
pub const CAP_CRC: u32 = 1 << 0;

/// Capability bit advertised in [`Message::Hello`]/[`Message::HelloOk`]:
/// the sender understands the `FLAG_TRACE` frame field
/// ([`crate::codec::FLAG_TRACE`]) carrying a per-request trace id.
/// Traced frames are only sent to peers that advertised this bit, so
/// a legacy (CRC-only) peer sees bit-identical frames.
pub const CAP_TRACE: u32 = 1 << 1;

/// Capability bit advertised in [`Message::Hello`]/[`Message::HelloOk`]:
/// the sender understands the `FLAG_DEADLINE` frame field
/// ([`crate::codec::FLAG_DEADLINE`]) carrying a per-request deadline
/// budget in milliseconds. Budgeted frames are only sent to peers that
/// advertised this bit, so a legacy peer sees bit-identical frames —
/// the same negotiation pattern as [`CAP_TRACE`].
pub const CAP_DEADLINE: u32 = 1 << 2;

/// Capability bit advertised in [`Message::Hello`]/[`Message::HelloOk`]:
/// the sender implements the span flight recorder and serves the
/// [`Message::TraceDump`]/[`Message::SlowLog`] RPCs. Unlike the other
/// caps this one gates **opcodes, not a frame field**: a daemon
/// refuses the two span RPCs from a peer that did not advertise the
/// bit (typed `BadRequest`), and a client never sends them to a
/// daemon that did not — so a legacy peer's frames stay bit-identical
/// and it is never asked to decode an opcode it does not know.
pub const CAP_SPANS: u32 = 1 << 3;

/// The capabilities this build advertises.
pub const LOCAL_CAPS: u32 = CAP_CRC | CAP_TRACE | CAP_DEADLINE | CAP_SPANS;

/// Who is on the other end of a connection — drives the byte-class a
/// connection's traffic is accounted under (client↔server vs
/// server↔server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A compute-node client (`das` CLI / client library).
    Client,
    /// Another `dasd` storage server (dependence fetches, replica
    /// forwarding, redistribution pulls).
    Server,
}

/// Typed error codes carried by [`Message::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The file id or name is unknown on this server.
    NoSuchFile = 1,
    /// A file with this name already exists.
    DuplicateName = 2,
    /// Offset/length outside the file (or strip index out of range).
    OutOfBounds = 3,
    /// The addressed server id is not part of the cluster.
    NoSuchServer = 4,
    /// The requested strip is not stored on this server.
    StripNotLocal = 5,
    /// A strip payload's length does not match the file's geometry.
    StripLengthMismatch = 6,
    /// No kernel / feature record registered under that name.
    UnknownOperator = 7,
    /// File length is not a whole number of image rows.
    GeometryMismatch = 8,
    /// The decision workflow rejected the offload; the client must
    /// serve the request as normal I/O (the paper's fallback path).
    FallbackToNormalIo = 9,
    /// Malformed or semantically invalid request.
    BadRequest = 10,
    /// Unexpected server-side failure.
    Internal = 11,
    /// Transient server-side condition (overload, a flaky peer link,
    /// an injected fault). The request itself was well-formed; the
    /// client should back off and retry the same request.
    Retryable = 12,
    /// The server's admission controller shed this request: the
    /// bounded backlog was full, or the request's propagated deadline
    /// budget had already expired on arrival. Transient — the shared
    /// retry layer backs off and retries, by which time the queue has
    /// drained (or the caller's own deadline has fired).
    Overloaded = 13,
}

impl ErrorCode {
    /// Every assigned error code, in wire-value order. Static analysis
    /// and the protocol-conformance pass iterate this to prove the
    /// code table and `docs/PROTOCOL.md` agree; a new variant that is
    /// not added here fails the exhaustiveness test below.
    pub const ALL: [ErrorCode; 13] = [
        ErrorCode::NoSuchFile,
        ErrorCode::DuplicateName,
        ErrorCode::OutOfBounds,
        ErrorCode::NoSuchServer,
        ErrorCode::StripNotLocal,
        ErrorCode::StripLengthMismatch,
        ErrorCode::UnknownOperator,
        ErrorCode::GeometryMismatch,
        ErrorCode::FallbackToNormalIo,
        ErrorCode::BadRequest,
        ErrorCode::Internal,
        ErrorCode::Retryable,
        ErrorCode::Overloaded,
    ];

    /// The code's canonical name, exactly as `docs/PROTOCOL.md`
    /// spells it.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::NoSuchFile => "NoSuchFile",
            ErrorCode::DuplicateName => "DuplicateName",
            ErrorCode::OutOfBounds => "OutOfBounds",
            ErrorCode::NoSuchServer => "NoSuchServer",
            ErrorCode::StripNotLocal => "StripNotLocal",
            ErrorCode::StripLengthMismatch => "StripLengthMismatch",
            ErrorCode::UnknownOperator => "UnknownOperator",
            ErrorCode::GeometryMismatch => "GeometryMismatch",
            ErrorCode::FallbackToNormalIo => "FallbackToNormalIo",
            ErrorCode::BadRequest => "BadRequest",
            ErrorCode::Internal => "Internal",
            ErrorCode::Retryable => "Retryable",
            ErrorCode::Overloaded => "Overloaded",
        }
    }

    /// Decode a wire value.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => NoSuchFile,
            2 => DuplicateName,
            3 => OutOfBounds,
            4 => NoSuchServer,
            5 => StripNotLocal,
            6 => StripLengthMismatch,
            7 => UnknownOperator,
            8 => GeometryMismatch,
            9 => FallbackToNormalIo,
            10 => BadRequest,
            11 => Internal,
            12 => Retryable,
            13 => Overloaded,
            _ => return None,
        })
    }

    /// Whether the condition is transient — a retry of the identical
    /// request may succeed (drives the client/peer retry layer).
    pub fn is_transient(self) -> bool {
        matches!(self, ErrorCode::Retryable | ErrorCode::Overloaded)
    }
}

/// Per-connection-class byte counters reported by [`Message::StatsResp`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Bytes received on client↔server connections.
    pub client_in: u64,
    /// Bytes sent on client↔server connections.
    pub client_out: u64,
    /// Bytes received on server↔server connections.
    pub server_in: u64,
    /// Bytes sent on server↔server connections.
    pub server_out: u64,
}

/// Every RPC of the protocol. Requests and responses share the enum;
/// the opcode namespaces them (responses are `request | 1` except the
/// catch-all [`Message::Error`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// First frame on every connection: who am I?
    Hello {
        /// Connection class.
        role: Role,
        /// Sender's server id when `role` is [`Role::Server`]; 0 for
        /// clients.
        peer_id: u32,
        /// Capability bits the sender supports (see [`CAP_CRC`]).
        caps: u32,
    },
    /// Accepts a [`Message::Hello`]; identifies the serving daemon.
    HelloOk {
        /// The responding server's id.
        server_id: u32,
        /// Capability bits the daemon supports (see [`CAP_CRC`]).
        caps: u32,
    },

    /// Register a file's metadata (no data — strips arrive via
    /// [`Message::PutStrip`]). Sent to **every** server; ids are
    /// assigned in creation order and must agree across the cluster.
    CreateFile {
        /// Unique file name.
        name: String,
        /// Length in bytes.
        file_len: u64,
        /// Strip size in bytes.
        strip_size: u32,
        /// Placement policy.
        policy: LayoutPolicy,
        /// Number of servers the layout is computed over.
        servers: u32,
    },
    /// File created; carries the assigned id.
    CreateFileOk {
        /// Assigned file id.
        file: u32,
    },
    /// Upload one strip to a server that holds it under the file's
    /// layout (primary or replica — the server decides which).
    PutStrip {
        /// File id.
        file: u32,
        /// Strip index.
        strip: u64,
        /// Strip bytes; must be exactly the strip's length.
        payload: Vec<u8>,
    },
    /// Strip stored.
    PutStripOk,
    /// Fetch one locally-stored strip.
    GetStrip {
        /// File id.
        file: u32,
        /// Strip index.
        strip: u64,
    },
    /// The requested strip's bytes.
    StripData {
        /// Strip bytes.
        payload: Vec<u8>,
    },
    /// Resolve a file name to its id and distribution.
    Lookup {
        /// File name.
        name: String,
    },
    /// Lookup result.
    LookupOk {
        /// File id.
        file: u32,
        /// Current distribution.
        dist: DistributionInfo,
    },
    /// Query a file's distribution information (the paper's
    /// Section III-C client query).
    GetDistribution {
        /// File id.
        file: u32,
    },
    /// Distribution information.
    DistributionResp {
        /// Current distribution.
        dist: DistributionInfo,
    },

    /// Phase one of a redistribution: fetch every strip this server
    /// gains under `policy` from its current primary (server↔server
    /// traffic), staging without touching the live layout.
    RedistPrepare {
        /// File id.
        file: u32,
        /// Target placement policy.
        policy: LayoutPolicy,
    },
    /// Staging done.
    RedistPrepareOk {
        /// Strips fetched from peers.
        fetched_strips: u64,
        /// Payload bytes fetched from peers.
        fetched_bytes: u64,
    },
    /// Phase two: swap the file to `policy` — adopt staged strips,
    /// re-flag retained ones, evict strips no longer held.
    RedistCommit {
        /// File id.
        file: u32,
        /// Target placement policy (must match the prepare).
        policy: LayoutPolicy,
    },
    /// Layout swapped.
    RedistCommitOk,

    /// Run `kernel` over this server's primary strips of `file`,
    /// writing output strips of `out_file` (same geometry, created
    /// beforehand on every server).
    Execute {
        /// Input file id.
        file: u32,
        /// Output file id.
        out_file: u32,
        /// Kernel registry name (e.g. `"flow-routing"`).
        kernel: String,
        /// Image width in elements.
        img_width: u64,
        /// Element size in bytes (4 — f32 rasters).
        element_size: u32,
        /// Successive-operation hint for the decision workflow.
        successive: bool,
        /// Skip the decision workflow (the NAS scheme: offload
        /// unconditionally, dependence cost be damned).
        force: bool,
    },
    /// Execution finished on this server.
    ExecuteOk {
        /// Primary strips computed.
        strips_computed: u64,
        /// Dependence fetches issued to peers (per task, as the
        /// predictor counts them).
        dep_fetches: u64,
        /// Payload bytes those fetches moved.
        dep_fetch_bytes: u64,
    },

    /// Query the per-class byte counters.
    Stats,
    /// Byte counters since start / last reset.
    StatsResp(WireStats),
    /// Zero the byte counters.
    ResetStats,
    /// Counters zeroed.
    ResetStatsOk,
    /// Dump the daemon's full metrics registry (request counts,
    /// decision outcomes, predicted-vs-measured bytes, latency
    /// histograms — the live-introspection surface behind
    /// `das stats`).
    MetricsDump,
    /// The registry in Prometheus text exposition format. Carried as
    /// a length-prefixed blob (`u32`) because the dump can exceed the
    /// `u16` string cap.
    MetricsText {
        /// Prometheus text exposition body (UTF-8).
        text: String,
    },
    /// Fetch every span the daemon's flight recorder retains for one
    /// trace id (caps-gated behind [`CAP_SPANS`]). `das trace` sends
    /// this to every daemon and merges the replies into a
    /// cross-daemon waterfall.
    TraceDump {
        /// The trace id to look up.
        trace: u64,
    },
    /// The retained spans of the requested trace, as the opaque span
    /// blob of `das_obs::encode_spans` (`u32` count + fixed 40-byte
    /// records). Opaque to the codec so the wire layer carries no
    /// span vocabulary.
    TraceDumpResp {
        /// Encoded span records.
        spans: Vec<u8>,
    },
    /// Fetch the daemon's slowest-N root spans per op class, with
    /// their retained sub-spans (caps-gated behind [`CAP_SPANS`]).
    SlowLog {
        /// Upper bound on roots returned per op class (clamped
        /// server-side to the reservoir depth).
        per_class: u32,
    },
    /// The slow-log spans, encoded like [`Message::TraceDumpResp`].
    SlowLogResp {
        /// Encoded span records, slowest roots first.
        spans: Vec<u8>,
    },

    /// Liveness probe.
    Ping,
    /// Liveness reply.
    Pong,
    /// Ask the daemon to exit after replying.
    Shutdown,
    /// Acknowledged; the daemon is going down.
    ShutdownOk,

    /// Any request-level failure.
    Error {
        /// Typed error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Every opcode assigned by protocol version 1, in numeric order —
/// the enumerable ground truth the protocol-conformance pass sweeps
/// against [`Message::samples`] and `docs/PROTOCOL.md`. Any opcode
/// **not** in this list must be rejected by [`Message::decode`].
pub const KNOWN_OPCODES: [u8; 33] = [
    0x01, 0x02, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x20, 0x21, 0x22,
    0x23, 0x30, 0x31, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49, 0x50, 0x51,
    0x52, 0x53, 0x7F,
];

impl Message {
    /// One representative instance of **every** message kind, with
    /// non-default field values, in opcode order. This is what makes
    /// the protocol enumerable for analysis: the conformance pass
    /// encodes each sample, decodes it back, and checks the
    /// (flags × caps × opcode) space without hand-listing variants —
    /// adding a variant without extending this list fails the
    /// exhaustiveness test.
    pub fn samples() -> Vec<Message> {
        let dist = DistributionInfo {
            strip_size: 4096,
            servers: 4,
            policy: LayoutPolicy::GroupedReplicated { group: 2 },
            file_len: 98304,
        };
        vec![
            Message::Hello { role: Role::Server, peer_id: 3, caps: LOCAL_CAPS },
            Message::HelloOk { server_id: 2, caps: LOCAL_CAPS },
            Message::CreateFile {
                name: "dem.raw".into(),
                file_len: 98304,
                strip_size: 4096,
                policy: LayoutPolicy::Grouped { group: 4 },
                servers: 4,
            },
            Message::CreateFileOk { file: 7 },
            Message::PutStrip { file: 7, strip: 11, payload: vec![1, 2, 3, 4] },
            Message::PutStripOk,
            Message::GetStrip { file: 7, strip: 11 },
            Message::StripData { payload: vec![9, 8, 7] },
            Message::Lookup { name: "dem.raw".into() },
            Message::LookupOk { file: 7, dist },
            Message::GetDistribution { file: 7 },
            Message::DistributionResp { dist },
            Message::RedistPrepare { file: 7, policy: LayoutPolicy::GroupedReplicated { group: 2 } },
            Message::RedistPrepareOk { fetched_strips: 5, fetched_bytes: 20480 },
            Message::RedistCommit { file: 7, policy: LayoutPolicy::GroupedReplicated { group: 2 } },
            Message::RedistCommitOk,
            Message::Execute {
                file: 7,
                out_file: 8,
                kernel: "flow-routing".into(),
                img_width: 256,
                element_size: 4,
                successive: true,
                force: false,
            },
            Message::ExecuteOk { strips_computed: 6, dep_fetches: 12, dep_fetch_bytes: 49152 },
            Message::Stats,
            Message::StatsResp(WireStats {
                client_in: 1,
                client_out: 2,
                server_in: 3,
                server_out: 4,
            }),
            Message::ResetStats,
            Message::ResetStatsOk,
            Message::MetricsDump,
            Message::MetricsText { text: "# TYPE dasd_requests_total counter\n".into() },
            Message::TraceDump { trace: 0xDA5_0B5 },
            Message::TraceDumpResp { spans: vec![0, 0, 0, 0] },
            Message::SlowLog { per_class: 4 },
            Message::SlowLogResp { spans: vec![0, 0, 0, 0] },
            Message::Ping,
            Message::Pong,
            Message::Shutdown,
            Message::ShutdownOk,
            Message::Error { code: ErrorCode::Retryable, message: "transient".into() },
        ]
    }

    /// The opcode identifying this message in the frame header.
    pub fn opcode(&self) -> u8 {
        match self {
            Message::Hello { .. } => 0x01,
            Message::HelloOk { .. } => 0x02,
            Message::CreateFile { .. } => 0x10,
            Message::CreateFileOk { .. } => 0x11,
            Message::PutStrip { .. } => 0x12,
            Message::PutStripOk => 0x13,
            Message::GetStrip { .. } => 0x14,
            Message::StripData { .. } => 0x15,
            Message::Lookup { .. } => 0x16,
            Message::LookupOk { .. } => 0x17,
            Message::GetDistribution { .. } => 0x18,
            Message::DistributionResp { .. } => 0x19,
            Message::RedistPrepare { .. } => 0x20,
            Message::RedistPrepareOk { .. } => 0x21,
            Message::RedistCommit { .. } => 0x22,
            Message::RedistCommitOk => 0x23,
            Message::Execute { .. } => 0x30,
            Message::ExecuteOk { .. } => 0x31,
            Message::Stats => 0x40,
            Message::StatsResp(_) => 0x41,
            Message::ResetStats => 0x42,
            Message::ResetStatsOk => 0x43,
            Message::MetricsDump => 0x44,
            Message::MetricsText { .. } => 0x45,
            Message::TraceDump { .. } => 0x46,
            Message::TraceDumpResp { .. } => 0x47,
            Message::SlowLog { .. } => 0x48,
            Message::SlowLogResp { .. } => 0x49,
            Message::Ping => 0x50,
            Message::Pong => 0x51,
            Message::Shutdown => 0x52,
            Message::ShutdownOk => 0x53,
            Message::Error { .. } => 0x7F,
        }
    }

    /// A stable, human-readable name for the message kind — the `op`
    /// label of the per-request metrics.
    pub fn op_name(&self) -> &'static str {
        match self {
            Message::Hello { .. } => "hello",
            Message::HelloOk { .. } => "hello_ok",
            Message::CreateFile { .. } => "create_file",
            Message::CreateFileOk { .. } => "create_file_ok",
            Message::PutStrip { .. } => "put_strip",
            Message::PutStripOk => "put_strip_ok",
            Message::GetStrip { .. } => "get_strip",
            Message::StripData { .. } => "strip_data",
            Message::Lookup { .. } => "lookup",
            Message::LookupOk { .. } => "lookup_ok",
            Message::GetDistribution { .. } => "get_distribution",
            Message::DistributionResp { .. } => "distribution_resp",
            Message::RedistPrepare { .. } => "redist_prepare",
            Message::RedistPrepareOk { .. } => "redist_prepare_ok",
            Message::RedistCommit { .. } => "redist_commit",
            Message::RedistCommitOk => "redist_commit_ok",
            Message::Execute { .. } => "execute",
            Message::ExecuteOk { .. } => "execute_ok",
            Message::Stats => "stats",
            Message::StatsResp(_) => "stats_resp",
            Message::ResetStats => "reset_stats",
            Message::ResetStatsOk => "reset_stats_ok",
            Message::MetricsDump => "metrics_dump",
            Message::MetricsText { .. } => "metrics_text",
            Message::TraceDump { .. } => "trace_dump",
            Message::TraceDumpResp { .. } => "trace_dump_resp",
            Message::SlowLog { .. } => "slow_log",
            Message::SlowLogResp { .. } => "slow_log_resp",
            Message::Ping => "ping",
            Message::Pong => "pong",
            Message::Shutdown => "shutdown",
            Message::ShutdownOk => "shutdown_ok",
            Message::Error { .. } => "error",
        }
    }

    /// Encode the payload (everything after the frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Message::Hello { role, peer_id, caps } => {
                put_u8(&mut b, match role {
                    Role::Client => 0,
                    Role::Server => 1,
                });
                put_u32(&mut b, *peer_id);
                put_u32(&mut b, *caps);
            }
            Message::HelloOk { server_id, caps } => {
                put_u32(&mut b, *server_id);
                put_u32(&mut b, *caps);
            }
            Message::CreateFile { name, file_len, strip_size, policy, servers } => {
                put_str(&mut b, name);
                put_u64(&mut b, *file_len);
                put_u32(&mut b, *strip_size);
                put_policy(&mut b, *policy);
                put_u32(&mut b, *servers);
            }
            Message::CreateFileOk { file } => put_u32(&mut b, *file),
            Message::PutStrip { file, strip, payload } => {
                put_u32(&mut b, *file);
                put_u64(&mut b, *strip);
                put_blob(&mut b, payload);
            }
            Message::PutStripOk => {}
            Message::GetStrip { file, strip } => {
                put_u32(&mut b, *file);
                put_u64(&mut b, *strip);
            }
            Message::StripData { payload } => put_blob(&mut b, payload),
            Message::Lookup { name } => put_str(&mut b, name),
            Message::LookupOk { file, dist } => {
                put_u32(&mut b, *file);
                put_dist(&mut b, dist);
            }
            Message::GetDistribution { file } => put_u32(&mut b, *file),
            Message::DistributionResp { dist } => put_dist(&mut b, dist),
            Message::RedistPrepare { file, policy } | Message::RedistCommit { file, policy } => {
                put_u32(&mut b, *file);
                put_policy(&mut b, *policy);
            }
            Message::RedistPrepareOk { fetched_strips, fetched_bytes } => {
                put_u64(&mut b, *fetched_strips);
                put_u64(&mut b, *fetched_bytes);
            }
            Message::RedistCommitOk => {}
            Message::Execute { file, out_file, kernel, img_width, element_size, successive, force } => {
                put_u32(&mut b, *file);
                put_u32(&mut b, *out_file);
                put_str(&mut b, kernel);
                put_u64(&mut b, *img_width);
                put_u32(&mut b, *element_size);
                put_u8(&mut b, *successive as u8);
                put_u8(&mut b, *force as u8);
            }
            Message::ExecuteOk { strips_computed, dep_fetches, dep_fetch_bytes } => {
                put_u64(&mut b, *strips_computed);
                put_u64(&mut b, *dep_fetches);
                put_u64(&mut b, *dep_fetch_bytes);
            }
            Message::MetricsText { text } => put_blob(&mut b, text.as_bytes()),
            Message::TraceDump { trace } => put_u64(&mut b, *trace),
            Message::TraceDumpResp { spans } | Message::SlowLogResp { spans } => {
                put_blob(&mut b, spans)
            }
            Message::SlowLog { per_class } => put_u32(&mut b, *per_class),
            Message::Stats
            | Message::ResetStats
            | Message::ResetStatsOk
            | Message::MetricsDump
            | Message::Ping
            | Message::Pong
            | Message::Shutdown
            | Message::ShutdownOk => {}
            Message::StatsResp(s) => {
                put_u64(&mut b, s.client_in);
                put_u64(&mut b, s.client_out);
                put_u64(&mut b, s.server_in);
                put_u64(&mut b, s.server_out);
            }
            Message::Error { code, message } => {
                put_u16(&mut b, *code as u16);
                put_str(&mut b, message);
            }
        }
        b
    }

    /// Split the payload encoding into a small `prefix` (fixed fields
    /// plus any blob length prefix) and a borrowed `body` (the blob
    /// bytes themselves), such that `prefix ⧺ body` is bit-identical
    /// to [`Message::encode_payload`]. The blob-carrying messages —
    /// [`Message::PutStrip`], [`Message::StripData`],
    /// [`Message::MetricsText`], [`Message::TraceDumpResp`],
    /// [`Message::SlowLogResp`] — put their bulk bytes in `body`;
    /// every other message returns its full encoding as `prefix` with
    /// an empty `body`. This is what lets the vectored frame writer
    /// ([`crate::codec::write_frame_vectored`]) send a strip
    /// without copying it through an intermediate frame buffer.
    pub fn split_payload(&self) -> (Vec<u8>, &[u8]) {
        let mut b = Vec::new();
        match self {
            Message::PutStrip { file, strip, payload } => {
                put_u32(&mut b, *file);
                put_u64(&mut b, *strip);
                assert!(payload.len() <= u32::MAX as usize, "blob field too long");
                put_u32(&mut b, payload.len() as u32);
                (b, payload)
            }
            Message::StripData { payload } => {
                assert!(payload.len() <= u32::MAX as usize, "blob field too long");
                put_u32(&mut b, payload.len() as u32);
                (b, payload)
            }
            Message::MetricsText { text } => {
                assert!(text.len() <= u32::MAX as usize, "blob field too long");
                put_u32(&mut b, text.len() as u32);
                (b, text.as_bytes())
            }
            Message::TraceDumpResp { spans } | Message::SlowLogResp { spans } => {
                assert!(spans.len() <= u32::MAX as usize, "blob field too long");
                put_u32(&mut b, spans.len() as u32);
                (b, spans)
            }
            _ => (self.encode_payload(), &[]),
        }
    }

    /// Decode a payload for `opcode`. Fails on unknown opcodes, short
    /// or over-long payloads, and malformed fields.
    pub fn decode(opcode: u8, payload: &[u8]) -> Result<Message, DecodeError> {
        let mut d = Dec { buf: payload, pos: 0 };
        let msg = match opcode {
            0x01 => {
                let role = match d.take_u8()? {
                    0 => Role::Client,
                    1 => Role::Server,
                    v => return Err(DecodeError::new(format!("bad role {v}"))),
                };
                Message::Hello { role, peer_id: d.take_u32()?, caps: d.take_u32()? }
            }
            0x02 => Message::HelloOk { server_id: d.take_u32()?, caps: d.take_u32()? },
            0x10 => Message::CreateFile {
                name: d.take_str()?,
                file_len: d.take_u64()?,
                strip_size: d.take_u32()?,
                policy: d.take_policy()?,
                servers: d.take_u32()?,
            },
            0x11 => Message::CreateFileOk { file: d.take_u32()? },
            0x12 => Message::PutStrip {
                file: d.take_u32()?,
                strip: d.take_u64()?,
                payload: d.take_blob()?,
            },
            0x13 => Message::PutStripOk,
            0x14 => Message::GetStrip { file: d.take_u32()?, strip: d.take_u64()? },
            0x15 => Message::StripData { payload: d.take_blob()? },
            0x16 => Message::Lookup { name: d.take_str()? },
            0x17 => Message::LookupOk { file: d.take_u32()?, dist: d.take_dist()? },
            0x18 => Message::GetDistribution { file: d.take_u32()? },
            0x19 => Message::DistributionResp { dist: d.take_dist()? },
            0x20 => Message::RedistPrepare { file: d.take_u32()?, policy: d.take_policy()? },
            0x21 => Message::RedistPrepareOk {
                fetched_strips: d.take_u64()?,
                fetched_bytes: d.take_u64()?,
            },
            0x22 => Message::RedistCommit { file: d.take_u32()?, policy: d.take_policy()? },
            0x23 => Message::RedistCommitOk,
            0x30 => Message::Execute {
                file: d.take_u32()?,
                out_file: d.take_u32()?,
                kernel: d.take_str()?,
                img_width: d.take_u64()?,
                element_size: d.take_u32()?,
                successive: d.take_u8()? != 0,
                force: d.take_u8()? != 0,
            },
            0x31 => Message::ExecuteOk {
                strips_computed: d.take_u64()?,
                dep_fetches: d.take_u64()?,
                dep_fetch_bytes: d.take_u64()?,
            },
            0x40 => Message::Stats,
            0x41 => Message::StatsResp(WireStats {
                client_in: d.take_u64()?,
                client_out: d.take_u64()?,
                server_in: d.take_u64()?,
                server_out: d.take_u64()?,
            }),
            0x42 => Message::ResetStats,
            0x43 => Message::ResetStatsOk,
            0x44 => Message::MetricsDump,
            0x45 => Message::MetricsText {
                text: String::from_utf8(d.take_blob()?)
                    .map_err(|_| DecodeError::new("metrics text not UTF-8"))?,
            },
            0x46 => Message::TraceDump { trace: d.take_u64()? },
            0x47 => Message::TraceDumpResp { spans: d.take_blob()? },
            0x48 => Message::SlowLog { per_class: d.take_u32()? },
            0x49 => Message::SlowLogResp { spans: d.take_blob()? },
            0x50 => Message::Ping,
            0x51 => Message::Pong,
            0x52 => Message::Shutdown,
            0x53 => Message::ShutdownOk,
            0x7F => {
                let raw = d.take_u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| DecodeError::new(format!("unknown error code {raw}")))?;
                Message::Error { code, message: d.take_str()? }
            }
            op => return Err(DecodeError::new(format!("unknown opcode 0x{op:02x}"))),
        };
        d.finish()?;
        Ok(msg)
    }
}

/// A payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub reason: String,
}

impl DecodeError {
    fn new(reason: impl Into<String>) -> Self {
        DecodeError { reason: reason.into() }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed payload: {}", self.reason)
    }
}

impl std::error::Error for DecodeError {}

// ---- encoding primitives -------------------------------------------------

fn put_u8(b: &mut Vec<u8>, v: u8) {
    b.push(v);
}

fn put_u16(b: &mut Vec<u8>, v: u16) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    assert!(s.len() <= u16::MAX as usize, "string field too long");
    put_u16(b, s.len() as u16);
    b.extend_from_slice(s.as_bytes());
}

fn put_blob(b: &mut Vec<u8>, blob: &[u8]) {
    assert!(blob.len() <= u32::MAX as usize, "blob field too long");
    put_u32(b, blob.len() as u32);
    // das-lint: allow(DA804) owned-encode path; zero-copy senders go through split_payload instead
    b.extend_from_slice(blob);
}

fn put_policy(b: &mut Vec<u8>, p: LayoutPolicy) {
    match p {
        LayoutPolicy::RoundRobin => {
            put_u8(b, 0);
            put_u64(b, 0);
        }
        LayoutPolicy::Grouped { group } => {
            put_u8(b, 1);
            put_u64(b, group);
        }
        LayoutPolicy::GroupedReplicated { group } => {
            put_u8(b, 2);
            put_u64(b, group);
        }
    }
}

fn put_dist(b: &mut Vec<u8>, d: &DistributionInfo) {
    put_u64(b, d.strip_size as u64);
    put_u32(b, d.servers);
    put_policy(b, d.policy);
    put_u64(b, d.file_len);
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(DecodeError::new(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn take_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap())) // das-lint: allow(DA401) infallible 2-byte slice → array
    }

    fn take_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap())) // das-lint: allow(DA401) infallible 4-byte slice → array
    }

    fn take_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap())) // das-lint: allow(DA401) infallible 8-byte slice → array
    }

    fn take_str(&mut self) -> Result<String, DecodeError> {
        let len = self.take_u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::new("string not UTF-8"))
    }

    fn take_blob(&mut self) -> Result<Vec<u8>, DecodeError> {
        let len = self.take_u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn take_policy(&mut self) -> Result<LayoutPolicy, DecodeError> {
        let tag = self.take_u8()?;
        let group = self.take_u64()?;
        match tag {
            0 => Ok(LayoutPolicy::RoundRobin),
            1 if group >= 1 => Ok(LayoutPolicy::Grouped { group }),
            2 if group >= 1 => Ok(LayoutPolicy::GroupedReplicated { group }),
            _ => Err(DecodeError::new(format!("bad policy tag {tag} / group {group}"))),
        }
    }

    fn take_dist(&mut self) -> Result<DistributionInfo, DecodeError> {
        Ok(DistributionInfo {
            strip_size: self.take_u64()? as usize,
            servers: self.take_u32()?,
            policy: self.take_policy()?,
            file_len: self.take_u64()?,
        })
    }

    /// Reject trailing garbage: a payload must be consumed exactly.
    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(DecodeError::new(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Message) {
        let payload = m.encode_payload();
        let back = Message::decode(m.opcode(), &payload).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn representative_messages_roundtrip() {
        roundtrip(Message::Hello { role: Role::Server, peer_id: 3, caps: CAP_CRC });
        roundtrip(Message::CreateFile {
            name: "dem.raw".into(),
            file_len: 98304,
            strip_size: 4096,
            policy: LayoutPolicy::GroupedReplicated { group: 4 },
            servers: 4,
        });
        roundtrip(Message::PutStrip { file: 1, strip: 9, payload: vec![1, 2, 3] });
        roundtrip(Message::StripData { payload: vec![] });
        roundtrip(Message::Error { code: ErrorCode::FallbackToNormalIo, message: "cost".into() });
    }

    #[test]
    fn samples_enumerate_the_protocol_exhaustively() {
        let samples = Message::samples();
        // One sample per assigned opcode, in order — a new variant
        // must be added to both samples() and KNOWN_OPCODES.
        let opcodes: Vec<u8> = samples.iter().map(|m| m.opcode()).collect();
        assert_eq!(opcodes, KNOWN_OPCODES.to_vec());
        // Every sample roundtrips through its own opcode.
        for m in samples {
            let back = Message::decode(m.opcode(), &m.encode_payload()).unwrap();
            assert_eq!(back, m);
        }
        // Every error code is listed once, named, and decodes back.
        for (i, code) in ErrorCode::ALL.iter().enumerate() {
            assert_eq!(ErrorCode::from_u16(*code as u16), Some(*code));
            assert_eq!(*code as u16, i as u16 + 1, "codes are dense from 1");
            assert!(!code.name().is_empty());
        }
        assert_eq!(ErrorCode::from_u16(ErrorCode::ALL.len() as u16 + 1), None);
    }

    #[test]
    fn split_payload_is_bit_identical_to_encode_payload() {
        for m in Message::samples() {
            let (prefix, body) = m.split_payload();
            let mut joined = prefix.clone();
            joined.extend_from_slice(body);
            assert_eq!(joined, m.encode_payload(), "split drifted for {}", m.op_name());
        }
        // The blob carriers actually borrow their bulk bytes.
        let strip = Message::StripData { payload: vec![7; 1024] };
        let (prefix, body) = strip.split_payload();
        assert_eq!(prefix.len(), 4, "blob length prefix only");
        assert_eq!(body.len(), 1024);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = Message::Ping.encode_payload();
        payload.push(0);
        assert!(Message::decode(0x50, &payload).is_err());
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let payload = Message::GetStrip { file: 7, strip: 8 }.encode_payload();
        assert!(Message::decode(0x14, &payload[..payload.len() - 1]).is_err());
    }
}
