//! The shared retry/timeout/backoff policy used by every outbound
//! connection in das-net — the `das` client's server links and the
//! `dasd` daemon's peer links.
//!
//! Design constraints, in order:
//!
//! * **Never hang.** Every connect, read and write carries a timeout,
//!   and the total time a call can spend retrying is bounded by
//!   `max_attempts × (timeout + backoff)`.
//! * **Deterministic.** Backoff jitter comes from a SplitMix64 hash of
//!   the policy's seed and the attempt ordinal — no wall clock, no
//!   global RNG — so a chaos test replays identically and two
//!   processes with different seeds still decorrelate.
//! * **Connections are disposable.** After any transport error the
//!   link is in an unknown state (a late reply would desynchronize
//!   the request/response alternation), so retries always discard the
//!   old connection and redial.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::codec::NetError;

/// Timeouts, attempt budget and backoff shape for outbound calls.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// TCP connect timeout (per address candidate).
    pub connect_timeout: Duration,
    /// Socket read timeout while waiting for a reply.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Total attempts per logical call (first try included); ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_max: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(15),
            write_timeout: Duration::from_secs(15),
            max_attempts: 4,
            backoff_base: Duration::from_millis(20),
            backoff_max: Duration::from_secs(2),
            jitter_seed: 0x05ee_dda5,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// An aggressive policy for tests: tight timeouts, fast backoff.
    /// Keeps a chaos run's worst case (every attempt timing out) in
    /// the low seconds.
    pub fn fast() -> Self {
        RetryPolicy {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            max_attempts: 4,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
            jitter_seed: 0x05ee_dda5,
        }
    }

    /// The sleep before retry number `attempt` (1-based): exponential
    /// in the attempt, capped at `backoff_max`, with a deterministic
    /// jitter drawing the final value from `[half, full]` of the
    /// exponential step.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .backoff_base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.backoff_max)
            .max(Duration::from_micros(1));
        let nanos = exp.as_nanos() as u64;
        let half = nanos / 2;
        let jitter = splitmix64(self.jitter_seed ^ u64::from(attempt)) % (half + 1);
        Duration::from_nanos(half + jitter)
    }

    /// Sleep the backoff for retry number `attempt` (1-based).
    pub fn sleep_before_retry(&self, attempt: u32) {
        std::thread::sleep(self.backoff(attempt));
    }

    /// Dial `addr` with the connect timeout, then arm the socket's
    /// read/write timeouts and disable Nagle.
    pub fn connect(&self, addr: &str) -> io::Result<TcpStream> {
        let mut last = None;
        for sockaddr in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sockaddr, self.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(self.read_timeout));
                    let _ = stream.set_write_timeout(Some(self.write_timeout));
                    return Ok(stream);
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, format!("{addr}: no addresses"))
        }))
    }

    /// Run `op` up to `max_attempts` times, backing off between
    /// attempts, retrying only errors that [`NetError::is_transient`]
    /// classifies as worth retrying. Returns the last error when the
    /// budget is exhausted.
    pub fn retry<T>(&self, mut op: impl FnMut() -> Result<T, NetError>) -> Result<T, NetError> {
        let attempts = self.max_attempts.max(1);
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.sleep_before_retry(attempt);
            }
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt + 1 < attempts => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        // das-lint: allow(DA402) the loop body runs at least once, so `last` is always set here
        Err(last.expect("at least one attempt"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ErrorCode;

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let p = RetryPolicy::default();
        let a = p.backoff(1);
        let b = p.backoff(1);
        assert_eq!(a, b, "same attempt must back off identically");
        for attempt in 1..20 {
            let d = p.backoff(attempt);
            assert!(d <= p.backoff_max, "attempt {attempt}: {d:?} over cap");
            assert!(d >= p.backoff_base / 2, "attempt {attempt}: {d:?} under floor");
        }
        // Early attempts trend upward (half of exp step is monotone
        // until the cap).
        assert!(p.backoff(3) >= p.backoff_base, "exponential growth missing");
    }

    #[test]
    fn different_seeds_decorrelate_jitter() {
        let a = RetryPolicy { jitter_seed: 1, ..RetryPolicy::default() };
        let b = RetryPolicy { jitter_seed: 2, ..RetryPolicy::default() };
        let differs = (1..10).any(|i| a.backoff(i) != b.backoff(i));
        assert!(differs, "jitter ignored the seed");
    }

    #[test]
    fn retry_stops_on_fatal_errors() {
        let p = RetryPolicy { backoff_base: Duration::from_micros(1), ..RetryPolicy::fast() };
        let mut calls = 0;
        let r: Result<(), _> = p.retry(|| {
            calls += 1;
            Err(NetError::Remote { code: ErrorCode::NoSuchFile, message: "nope".into() })
        });
        assert!(r.is_err());
        assert_eq!(calls, 1, "fatal errors must not be retried");
    }

    #[test]
    fn retry_retries_transient_errors_up_to_budget() {
        let p = RetryPolicy { backoff_base: Duration::from_micros(1), ..RetryPolicy::fast() };
        let mut calls = 0;
        let r: Result<(), _> = p.retry(|| {
            calls += 1;
            Err(NetError::Remote { code: ErrorCode::Retryable, message: "busy".into() })
        });
        assert!(r.is_err());
        assert_eq!(calls, p.max_attempts, "transient errors retry to the budget");

        let mut calls = 0;
        let r = p.retry(|| {
            calls += 1;
            if calls < 3 {
                Err(NetError::Protocol("flaky".into()))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(r.unwrap(), 3, "success after transient failures");
    }
}
