//! End-to-end loopback integration: boot a cluster of real `dasd`
//! daemons on ephemeral ports, run the paper's three evaluation
//! schemes over TCP, and hold the results against the in-process
//! implementations —
//!
//! * outputs must be **bit-identical** to `das_runtime::run_scheme`
//!   (same kernels, same strips, different transport), and
//! * measured wire bytes must land within 10% of the analytic
//!   bandwidth predictions of `das-core` (framing overhead is the
//!   slack).

use std::net::TcpListener;

use das_core::{plan_distribution, PlanOptions, StripingParams};
use das_kernels::{kernel_by_name, workload};
use das_net::{run_net_scheme, spawn, DasCluster, DasdConfig, DasdHandle, NetScheme};
use das_pfs::{Layout, LayoutPolicy, ServerId, StripId, StripeSpec};
use das_runtime::{run_scheme, ClusterConfig, SchemeKind};

const SERVERS: usize = 4;
const WIDTH: u64 = 256;
const HEIGHT: u64 = 96;
const STRIP: usize = 4096; // 4 rows of 256 f32s per strip → 24 strips

struct Harness {
    handles: Vec<DasdHandle>,
    cluster: DasCluster,
}

fn boot(servers: usize) -> Harness {
    let listeners: Vec<TcpListener> = (0..servers)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().unwrap().to_string()).collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| spawn(DasdConfig::new(i as u32, addrs.clone()), l).expect("spawn dasd"))
        .collect();
    let cluster = DasCluster::connect(&addrs).expect("connect cluster");
    Harness { handles, cluster }
}

impl Harness {
    fn teardown(mut self) {
        self.cluster.shutdown_all().expect("shutdown");
        drop(self.cluster); // close client connections so workers exit
        for h in self.handles {
            h.join();
        }
    }
}

fn within_pct(measured: u64, predicted: u64, pct: f64) -> bool {
    let (m, p) = (measured as f64, predicted as f64);
    if p == 0.0 {
        return m == 0.0;
    }
    (m - p).abs() / p <= pct / 100.0
}

/// The paper's experiment, over real sockets: ingest a DEM under
/// round-robin, run one kernel under TS, NAS and DAS, compare.
fn run_kernel_over_wire(kernel_name: &str) {
    let input = workload::fbm_dem(WIDTH, HEIGHT, 42);
    let data = input.to_bytes();
    let file_len = data.len() as u64;
    let kernel = kernel_by_name(kernel_name).unwrap();
    let offsets = kernel.dependence_offsets(WIDTH);

    // In-process ground truth (same node count and strip size).
    let mut cfg = ClusterConfig::paper_default();
    cfg.storage_nodes = SERVERS as u32;
    cfg.compute_nodes = SERVERS as u32;
    cfg.strip_size = STRIP;
    let truth_ts = run_scheme(&cfg, SchemeKind::Ts, kernel.as_ref(), &input);
    let truth_nas = run_scheme(&cfg, SchemeKind::Nas, kernel.as_ref(), &input);
    let truth_das = run_scheme(&cfg, SchemeKind::Das, kernel.as_ref(), &input);
    // All three in-process schemes agree with the plain kernel.
    let direct = kernel.apply(&input).fingerprint();
    assert_eq!(truth_ts.output_fingerprint, direct);
    assert_eq!(truth_nas.output_fingerprint, direct);
    assert_eq!(truth_das.output_fingerprint, direct);

    let mut h = boot(SERVERS);
    let file = h
        .cluster
        .create_file("dem.raw", file_len, STRIP as u32, LayoutPolicy::RoundRobin)
        .unwrap();
    h.cluster.put_file(file, &data).unwrap();

    // ---- TS: all traffic is client↔server, ≈ input + output. ----
    let ts = run_net_scheme(&mut h.cluster, NetScheme::Ts, file, "out.ts", kernel_name, WIDTH)
        .unwrap();
    assert!(!ts.offloaded);
    assert_eq!(ts.output_fingerprint, truth_ts.output_fingerprint, "TS output differs");
    let rr = StripingParams {
        element_size: 4,
        strip_size: STRIP as u64,
        layout: Layout::new(LayoutPolicy::RoundRobin, SERVERS as u32),
    };
    // Normal I/O moves the input to the client and the (equal-sized)
    // output back — the `ts_client_bytes` term of OffloadPrediction.
    let predicted_ts = 2 * file_len;
    assert!(
        within_pct(ts.client_bytes, predicted_ts, 10.0),
        "TS client bytes {} vs predicted {predicted_ts}",
        ts.client_bytes
    );
    assert_eq!(ts.server_bytes, 0, "TS moved bytes between servers");

    // ---- NAS: forced offload on round-robin; server↔server traffic
    // must match the predictor's strip-fetch model. ----
    let nas = run_net_scheme(&mut h.cluster, NetScheme::Nas, file, "out.nas", kernel_name, WIDTH)
        .unwrap();
    assert!(nas.offloaded);
    assert_eq!(nas.output_fingerprint, truth_nas.output_fingerprint, "NAS output differs");
    let predicted_nas = rr.predict_nas_fetches(&offsets, file_len);
    let dep_fetches: u64 = nas.exec.iter().map(|e| e.dep_fetches).sum();
    let dep_bytes: u64 = nas.exec.iter().map(|e| e.dep_fetch_bytes).sum();
    // Payload-level accounting is *exact* — same invariant the
    // in-process NAS test asserts.
    assert_eq!(dep_fetches, predicted_nas.fetches, "NAS fetch count diverged from predictor");
    assert_eq!(dep_bytes, predicted_nas.bytes, "NAS fetch bytes diverged from predictor");
    // Wire-level accounting includes framing; 10% slack.
    assert!(
        within_pct(nas.server_bytes, predicted_nas.bytes, 10.0),
        "NAS wire bytes {} vs predicted {}",
        nas.server_bytes,
        predicted_nas.bytes
    );

    // ---- DAS: decide, redistribute, offload. ----
    let das = run_net_scheme(&mut h.cluster, NetScheme::Das, file, "out.das", kernel_name, WIDTH)
        .unwrap();
    assert!(das.offloaded, "DAS should offload {kernel_name}");
    assert_eq!(das.output_fingerprint, truth_das.output_fingerprint, "DAS output differs");
    let plan = plan_distribution(&offsets, 4, STRIP as u64, SERVERS as u32, file_len, PlanOptions::default());
    assert_eq!(das.layout, plan.policy, "DAS did not adopt the planned layout");
    // On the dependence-friendly layout no execution-time fetches
    // remain.
    let das_fetches: u64 = das.exec.iter().map(|e| e.dep_fetches).sum();
    assert_eq!(das_fetches, 0, "planned layout left remote dependences");
    // Analytic server↔server traffic: the redistribution pulls plus
    // the forwarding of output boundary strips to their replicas.
    let spec = StripeSpec::new(STRIP);
    let old = Layout::new(LayoutPolicy::RoundRobin, SERVERS as u32);
    let new = Layout::new(plan.policy, SERVERS as u32);
    let mut predicted_das = 0u64;
    for t in 0..spec.strip_count(file_len) {
        let sid = StripId(t);
        let strip_len = spec.strip_len(sid, file_len) as u64;
        for s in 0..SERVERS as u32 {
            if new.holds(ServerId(s), sid) && !old.holds(ServerId(s), sid) {
                predicted_das += strip_len; // redistribution pull
            }
        }
        predicted_das += new.replicas(sid).len() as u64 * strip_len; // output replica forward
    }
    assert!(
        within_pct(das.server_bytes, predicted_das, 10.0),
        "DAS wire bytes {} vs analytic {predicted_das}",
        das.server_bytes
    );
    // DAS must beat NAS on server↔server traffic for these stencils —
    // the paper's headline effect, now on real sockets.
    assert!(
        das.server_bytes - das.redistribution_bytes < nas.server_bytes,
        "DAS steady-state traffic {} not below NAS {}",
        das.server_bytes - das.redistribution_bytes,
        nas.server_bytes
    );

    // The three networked outputs agree bit-for-bit with each other.
    assert_eq!(ts.output, nas.output);
    assert_eq!(ts.output, das.output);

    h.teardown();
}

#[test]
fn flow_routing_over_wire_matches_in_process() {
    run_kernel_over_wire("flow-routing");
}

#[test]
fn gaussian_over_wire_matches_in_process() {
    run_kernel_over_wire("gaussian-filter");
}

#[test]
fn six_server_cluster_redistributes_and_matches() {
    // A different cluster size exercises layout arithmetic end to end.
    let input = workload::fbm_dem(128, 120, 7);
    let data = input.to_bytes();
    let kernel = kernel_by_name("flow-routing").unwrap();
    let mut h = boot(6);
    let file = h
        .cluster
        .create_file("dem6.raw", data.len() as u64, 2048, LayoutPolicy::RoundRobin)
        .unwrap();
    h.cluster.put_file(file, &data).unwrap();
    let das =
        run_net_scheme(&mut h.cluster, NetScheme::Das, file, "out6.das", "flow-routing", 128)
            .unwrap();
    assert!(das.offloaded);
    assert_eq!(das.output_fingerprint, kernel.apply(&input).fingerprint());
    h.teardown();
}

#[test]
fn typed_errors_cross_the_wire() {
    use das_net::{ErrorCode, Message, NetError};
    let mut h = boot(SERVERS);
    // Unknown file.
    match h.cluster.call(0, &Message::GetStrip { file: 9, strip: 0 }) {
        Err(NetError::Remote { code: ErrorCode::NoSuchFile, .. }) => {}
        other => panic!("expected NoSuchFile, got {other:?}"),
    }
    let file = h.cluster.create_file("f", 100, 64, LayoutPolicy::RoundRobin).unwrap();
    // Re-creating with identical parameters is the idempotent-retry
    // case (a client whose CreateFileOk was lost): same id, no error.
    assert_eq!(h.cluster.create_file("f", 100, 64, LayoutPolicy::RoundRobin).unwrap(), file);
    // A conflicting create under the same name is a typed error.
    match h.cluster.create_file("f", 200, 32, LayoutPolicy::RoundRobin) {
        Err(NetError::Remote { code: ErrorCode::DuplicateName, .. }) => {}
        other => panic!("expected DuplicateName, got {other:?}"),
    }
    // Strip index past the end.
    match h.cluster.call(0, &Message::GetStrip { file, strip: 99 }) {
        Err(NetError::Remote { code: ErrorCode::OutOfBounds, .. }) => {}
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
    // Wrong-size strip payload.
    match h.cluster.call(0, &Message::PutStrip { file, strip: 0, payload: vec![0; 3] }) {
        Err(NetError::Remote { code: ErrorCode::StripLengthMismatch, .. }) => {}
        other => panic!("expected StripLengthMismatch, got {other:?}"),
    }
    // A strip this server does not hold (strip 1 of round-robin lives
    // on server 1, not 0).
    match h.cluster.call(0, &Message::PutStrip { file, strip: 1, payload: vec![0; 36] }) {
        Err(NetError::Remote { code: ErrorCode::StripNotLocal, .. }) => {}
        other => panic!("expected StripNotLocal, got {other:?}"),
    }
    // Unknown kernel is refused before any execution.
    let out = h.cluster.create_file("g", 100, 64, LayoutPolicy::RoundRobin).unwrap();
    match h.cluster.execute(file, out, "bitcoin-miner", 5, false, true) {
        Err(NetError::Remote { code: ErrorCode::UnknownOperator, .. }) => {}
        other => panic!("expected UnknownOperator, got {other:?}"),
    }
    h.teardown();
}

#[test]
fn rejected_offload_falls_back_to_normal_io() {
    // A tiny strip size makes the wide flow-routing stencil thrash
    // across servers: the decision workflow must refuse the offload
    // and the DAS driver must serve it as normal I/O — the paper's
    // fallback path, over the wire.
    let input = workload::fbm_dem(64, 256, 9);
    let data = input.to_bytes();
    let kernel = kernel_by_name("flow-routing").unwrap();
    let mut h = boot(SERVERS);
    let file = h
        .cluster
        .create_file("thrash.raw", data.len() as u64, 256, LayoutPolicy::RoundRobin)
        .unwrap();
    h.cluster.put_file(file, &data).unwrap();

    // Force=true must still execute (that is NAS's entire point)…
    let nas = run_net_scheme(&mut h.cluster, NetScheme::Nas, file, "t.nas", "flow-routing", 64)
        .unwrap();
    assert!(nas.offloaded);
    // …while DAS decides; whatever it picks, the output is right.
    let das = run_net_scheme(&mut h.cluster, NetScheme::Das, file, "t.das", "flow-routing", 64)
        .unwrap();
    assert_eq!(das.output_fingerprint, kernel.apply(&input).fingerprint());
    assert_eq!(nas.output_fingerprint, das.output_fingerprint);
    h.teardown();
}

/// Read one whole frame's raw bytes off a stream: header, optional
/// trace field, payload, optional checksum trailer.
fn read_raw_frame(sock: &mut std::net::TcpStream) -> Vec<u8> {
    use std::io::Read as _;
    let mut header = [0u8; 12];
    sock.read_exact(&mut header).expect("frame header");
    let flags = u16::from_le_bytes([header[6], header[7]]);
    let payload_len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let mut rest = payload_len;
    if flags & das_net::FLAG_TRACE != 0 {
        rest += 8;
    }
    if flags & das_net::FLAG_CRC != 0 {
        rest += 4;
    }
    let mut body = vec![0u8; rest];
    sock.read_exact(&mut body).expect("frame body");
    let mut frame = header.to_vec();
    frame.extend_from_slice(&body);
    frame
}

#[test]
fn crc_only_client_interops_bit_identically() {
    use std::io::Write as _;

    use das_net::{encode_frame, Message, Role, CAP_CRC, CAP_TRACE};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let handle = spawn(DasdConfig::new(0, vec![addr.clone()]), listener).expect("spawn dasd");

    // A pre-CAP_TRACE client: advertises only the checksum capability
    // and speaks the legacy frame encoding.
    let mut sock = std::net::TcpStream::connect(&addr).expect("connect");
    sock.write_all(&encode_frame(&Message::Hello {
        role: Role::Client,
        peer_id: 0,
        caps: CAP_CRC,
    }))
    .expect("hello");

    // The server still advertises everything it can do…
    let hello_ok = read_raw_frame(&mut sock);
    let flags = u16::from_le_bytes([hello_ok[6], hello_ok[7]]);
    assert_eq!(flags & das_net::FLAG_TRACE, 0, "handshake reply must not carry a trace field");
    match das_net::read_frame(&mut std::io::Cursor::new(&hello_ok)).expect("parse").unwrap() {
        (Message::HelloOk { caps, .. }, None) => {
            assert_ne!(caps & CAP_TRACE, 0, "server should advertise CAP_TRACE")
        }
        other => panic!("expected HelloOk, got {other:?}"),
    }

    // …but every reply to this client must be bit-identical to the
    // legacy encoding: no trace field, no new flags.
    sock.write_all(&encode_frame(&Message::Ping)).expect("ping");
    let reply = read_raw_frame(&mut sock);
    assert_eq!(
        reply,
        encode_frame(&Message::Pong),
        "reply to a CRC-only client must match the legacy encoding byte-for-byte"
    );

    sock.write_all(&encode_frame(&Message::Shutdown)).expect("shutdown");
    let reply = read_raw_frame(&mut sock);
    assert_eq!(reply, encode_frame(&Message::ShutdownOk));
    drop(sock);
    handle.join();
}

/// A client that did not negotiate `CAP_SPANS` must be refused the
/// span RPCs with a typed `BadRequest`, not served or disconnected.
#[test]
fn span_rpcs_without_negotiated_cap_are_refused() {
    use std::io::Write as _;

    use das_net::{encode_frame, ErrorCode, Message, Role, CAP_CRC};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap().to_string();
    let handle = spawn(DasdConfig::new(0, vec![addr.clone()]), listener).expect("spawn dasd");

    let mut sock = std::net::TcpStream::connect(&addr).expect("connect");
    sock.write_all(&encode_frame(&Message::Hello {
        role: Role::Client,
        peer_id: 0,
        caps: CAP_CRC,
    }))
    .expect("hello");
    let _ = read_raw_frame(&mut sock);

    for msg in [Message::TraceDump { trace: 42 }, Message::SlowLog { per_class: 4 }] {
        sock.write_all(&encode_frame(&msg)).expect("span rpc");
        let reply = read_raw_frame(&mut sock);
        match das_net::read_frame(&mut std::io::Cursor::new(&reply)).expect("parse").unwrap() {
            (Message::Error { code, .. }, None) => assert_eq!(
                code,
                ErrorCode::BadRequest,
                "unnegotiated span RPC must be refused as BadRequest"
            ),
            other => panic!("expected typed refusal, got {other:?}"),
        }
    }

    sock.write_all(&encode_frame(&Message::Shutdown)).expect("shutdown");
    let _ = read_raw_frame(&mut sock);
    drop(sock);
    handle.join();
}

/// The tentpole end-to-end: one traced `Execute` across the fleet,
/// then `TraceDump` from every daemon reconstructs the cross-daemon
/// waterfall — compute-side roots with local-read/kernel/assemble and
/// peer-fetch sub-spans, and *child* request roots on the daemons
/// that served the propagated dependence fetches, all under the one
/// wire-propagated trace id.
#[test]
fn execute_trace_reconstructs_cross_daemon_waterfall() {
    use das_obs::{OpClass, Stage};

    let input = workload::fbm_dem(WIDTH, HEIGHT, 42);
    let data = input.to_bytes();
    let mut h = boot(SERVERS);
    let file = h
        .cluster
        .create_file("wf.dem", data.len() as u64, STRIP as u32, LayoutPolicy::RoundRobin)
        .expect("create input");
    h.cluster.put_file(file, &data).expect("ingest");
    let out = h
        .cluster
        .create_file("wf.out", data.len() as u64, STRIP as u32, LayoutPolicy::RoundRobin)
        .expect("create output");

    let trace = h.cluster.begin_trace();
    let summaries = h
        .cluster
        .execute(file, out, "gaussian-filter", WIDTH, true, true)
        .expect("execute")
        .expect("forced offload must run");
    let fetches: u64 = summaries.iter().map(|s| s.dep_fetches).sum();
    assert!(fetches > 0, "round-robin gaussian must fetch neighbor rows from peers");

    // Move the client off the execute's trace id first — otherwise
    // the TraceDump request itself is traced under the id being
    // dumped, and its own not-yet-finished root pollutes the view.
    let _ = h.cluster.begin_trace();
    let dumps = h.cluster.trace_dump_all(trace).expect("trace dump");
    assert_eq!(dumps.len(), SERVERS, "every daemon answers TraceDump");

    let mut kernel_spans = 0usize;
    let mut peer_fetch_spans = 0usize;
    let mut get_roots = 0usize;
    for (id, spans) in &dumps {
        assert!(!spans.is_empty(), "daemon {id} retained no spans for the trace");
        let exec_roots: Vec<u32> = spans
            .iter()
            .filter(|s| s.parent == 0 && s.stage == Stage::Dispatch && s.op == OpClass::Exec)
            .map(|s| s.span)
            .collect();
        assert!(!exec_roots.is_empty(), "daemon {id} has no exec dispatch root");
        // Every sub-span links to a root retained in the same dump.
        let roots: Vec<u32> = spans.iter().filter(|s| s.parent == 0).map(|s| s.span).collect();
        for s in spans.iter().filter(|s| s.parent != 0) {
            assert!(
                roots.contains(&s.parent),
                "daemon {id}: span {} orphaned from parent {}",
                s.span,
                s.parent
            );
        }
        // Compute-side stage sub-spans hang off the exec root.
        for s in spans {
            match s.stage {
                Stage::Kernel => {
                    kernel_spans += 1;
                    assert!(exec_roots.contains(&s.parent), "kernel span outside exec root");
                }
                Stage::PeerFetch => peer_fetch_spans += 1,
                Stage::Dispatch if s.op == OpClass::Get && s.parent == 0 => get_roots += 1,
                _ => {}
            }
            assert_eq!(s.trace, trace);
            assert_eq!(s.daemon, *id);
        }
    }
    assert_eq!(kernel_spans, SERVERS, "each daemon times its kernel stage once");
    assert!(peer_fetch_spans > 0, "dependence fetches must record peer_fetch spans");
    assert!(
        get_roots > 0,
        "daemons serving propagated fetches must open child request roots on the same trace"
    );

    // The slow log carries the same roots with their stage breakdown.
    let slow = h.cluster.slow_log_all(4).expect("slow log");
    assert_eq!(slow.len(), SERVERS);
    for (id, spans) in &slow {
        let root = spans
            .iter()
            .find(|s| s.parent == 0 && s.op == OpClass::Exec && s.trace == trace)
            .unwrap_or_else(|| panic!("daemon {id}: exec root missing from slow log"));
        assert!(
            spans.iter().any(|s| s.parent == root.span && s.stage == Stage::Kernel),
            "daemon {id}: slow log root lacks its kernel breakdown"
        );
    }
    h.teardown();
}
