//! Pipelining integration: incremental frame decoding at hostile
//! byte boundaries, out-of-order reply matching by request id, the
//! pipelined client against a real daemon, and deterministic
//! shutdown with requests in flight.

use std::io::Write;
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use das_net::{
    encode_frame_traced, read_frame, spawn, DasCluster, DasdConfig, ErrorCode, FrameBuffer,
    Message, PipeClient, RetryPolicy,
};
use das_pfs::LayoutPolicy;
use proptest::prelude::*;

fn arb_small_message() -> BoxedStrategy<Message> {
    prop_oneof![
        Just(Message::Ping),
        Just(Message::Pong),
        Just(Message::PutStripOk),
        (any::<u32>(), any::<u64>()).prop_map(|(file, strip)| Message::GetStrip { file, strip }),
        proptest::collection::vec(any::<u8>(), 0..512)
            .prop_map(|payload| Message::StripData { payload }),
        (any::<u32>(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(file, strip, payload)| Message::PutStrip { file, strip, payload }),
        "[ -~]{0,48}".prop_map(|message| Message::Error {
            code: ErrorCode::Retryable,
            message,
        }),
    ]
    .boxed()
}

fn arb_trace() -> BoxedStrategy<Option<u64>> {
    prop_oneof![Just(None), any::<u64>().prop_map(Some)].boxed()
}

fn arb_traced_stream() -> BoxedStrategy<Vec<(Message, Option<u64>)>> {
    proptest::collection::vec((arb_small_message(), arb_trace()), 1..8).boxed()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

// A pipelined byte stream of several traced frames, delivered in
// chunks cut at arbitrary positions (mid-header, mid-trace,
// mid-payload, mid-CRC — wherever the seed lands), must decode to
// exactly the original messages and trace ids in order.
proptest! {
    #[test]
    fn split_frames_reassemble_bit_identically(
        stream in arb_traced_stream(),
        seed in any::<u64>(),
    ) {
        let mut wire = Vec::new();
        for (msg, trace) in &stream {
            wire.extend_from_slice(&encode_frame_traced(msg, *trace));
        }

        let mut fb = FrameBuffer::new();
        let mut got = Vec::new();
        let mut state = seed;
        let mut pos = 0usize;
        while pos < wire.len() {
            let n = 1 + (splitmix64(&mut state) as usize) % 16;
            let end = (pos + n).min(wire.len());
            fb.extend(&wire[pos..end]);
            pos = end;
            while let Some(frame) = fb.next_frame().expect("clean stream never errors") {
                got.push(frame);
            }
        }
        prop_assert_eq!(fb.pending(), 0, "no leftover bytes after the last frame");
        prop_assert_eq!(got.len(), stream.len());
        for ((m, t), (gm, gt)) in stream.iter().zip(&got) {
            prop_assert_eq!(m, gm);
            prop_assert_eq!(t, gt);
        }
    }
}

/// A server that echoes trace ids but answers a batch of requests in
/// REVERSE arrival order: the pipelined client must still hand every
/// caller its own reply.
#[test]
fn out_of_order_replies_match_by_request_id() {
    const BATCH: usize = 8;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();

    let server = std::thread::spawn(move || {
        let (mut sock, _) = listener.accept().expect("accept");
        // Handshake: accept any Hello, reply with full caps.
        let (hello, _) = read_frame(&mut sock).expect("read").expect("hello");
        assert!(matches!(hello, Message::Hello { .. }));
        sock.write_all(&encode_frame_traced(
            &Message::HelloOk { server_id: 0, caps: das_net::LOCAL_CAPS },
            None,
        ))
        .expect("hello ok");
        // Collect a full batch, then reply in reverse order, each
        // reply's payload derived from its own request.
        let mut batch = Vec::new();
        while batch.len() < BATCH {
            let (msg, trace) = read_frame(&mut sock).expect("read").expect("frame");
            let Message::GetStrip { strip, .. } = msg else {
                panic!("unexpected request {msg:?}")
            };
            batch.push((strip, trace));
        }
        for (strip, trace) in batch.into_iter().rev() {
            let reply = Message::StripData { payload: strip.to_le_bytes().to_vec() };
            sock.write_all(&encode_frame_traced(&reply, trace)).expect("reply");
        }
    });

    let client =
        Arc::new(PipeClient::connect(&addr, &RetryPolicy::fast()).expect("pipelined connect"));
    let mut callers = Vec::new();
    for strip in 0..BATCH as u64 {
        let client = Arc::clone(&client);
        callers.push(std::thread::spawn(move || {
            let reply =
                client.call(&Message::GetStrip { file: 1, strip }).expect("pipelined call");
            match reply {
                Message::StripData { payload } => {
                    assert_eq!(payload, strip.to_le_bytes().to_vec(), "got another caller's reply");
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }));
    }
    for c in callers {
        c.join().expect("caller");
    }
    server.join().expect("server");
}

fn boot(servers: usize) -> (Vec<das_net::DasdHandle>, Vec<String>) {
    let listeners: Vec<TcpListener> =
        (0..servers).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind")).collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().expect("addr").to_string()).collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| spawn(DasdConfig::new(i as u32, addrs.clone()), l).expect("spawn"))
        .collect();
    (handles, addrs)
}

/// Many threads hammering one pipelined connection against a real
/// daemon: every caller gets the right strip back.
#[test]
fn pipelined_client_against_live_daemon() {
    const STRIPS: u64 = 24;
    const STRIP_SIZE: u32 = 512;
    let (handles, addrs) = boot(1);
    let mut cluster = DasCluster::connect(&addrs).expect("connect");
    let len = STRIPS * STRIP_SIZE as u64;
    let file = cluster
        .create_file("pipe.dat", len, STRIP_SIZE, LayoutPolicy::RoundRobin)
        .expect("create");
    let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    cluster.put_file(file, &data).expect("put");

    let client =
        Arc::new(PipeClient::connect(&addrs[0], &RetryPolicy::default()).expect("pipe connect"));
    let mut threads = Vec::new();
    for t in 0..8u64 {
        let client = Arc::clone(&client);
        let data = data.clone();
        threads.push(std::thread::spawn(move || {
            for round in 0..16u64 {
                let strip = (t * 7 + round * 3) % STRIPS;
                let reply =
                    client.call(&Message::GetStrip { file, strip }).expect("pipelined get");
                let Message::StripData { payload } = reply else {
                    panic!("unexpected reply")
                };
                let start = (strip * STRIP_SIZE as u64) as usize;
                assert_eq!(payload, &data[start..start + STRIP_SIZE as usize]);
            }
        }));
    }
    for t in threads {
        t.join().expect("caller");
    }
    drop(client);
    cluster.shutdown_all().expect("shutdown");
    drop(cluster);
    for h in handles {
        h.join();
    }
}

/// `DasdHandle::shutdown` with requests still in flight: the daemon
/// must drain and join deterministically — no throwaway connection,
/// no hang — while concurrent callers either complete or fail with a
/// transport error, never a wrong reply.
#[test]
fn handle_shutdown_is_deterministic_under_inflight_load() {
    const STRIPS: u64 = 16;
    const STRIP_SIZE: u32 = 256;
    let (handles, addrs) = boot(1);
    let mut cluster = DasCluster::connect(&addrs).expect("connect");
    let len = STRIPS * STRIP_SIZE as u64;
    let file = cluster
        .create_file("drain.dat", len, STRIP_SIZE, LayoutPolicy::RoundRobin)
        .expect("create");
    cluster.put_file(file, &vec![7u8; len as usize]).expect("put");
    drop(cluster);

    let client =
        Arc::new(PipeClient::connect(&addrs[0], &RetryPolicy::fast()).expect("pipe connect"));
    let stop = Arc::new(AtomicBool::new(false));
    let mut callers = Vec::new();
    for t in 0..4u64 {
        let client = Arc::clone(&client);
        let stop = Arc::clone(&stop);
        callers.push(std::thread::spawn(move || {
            let mut strip = t;
            while !stop.load(Ordering::SeqCst) {
                match client.call(&Message::GetStrip { file, strip: strip % STRIPS }) {
                    Ok(Message::StripData { payload }) => {
                        assert_eq!(payload.len(), STRIP_SIZE as usize);
                    }
                    Ok(other) => panic!("unexpected reply {other:?}"),
                    Err(_) => return, // connection died during drain — fine
                }
                strip += 1;
            }
        }));
    }
    // Let requests pile in, then pull the flag mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    for h in &handles {
        h.shutdown();
    }
    // Every daemon thread must exit on its own; join() hanging fails
    // the suite via its timeout.
    for h in handles {
        h.join();
    }
    stop.store(true, Ordering::SeqCst);
    for c in callers {
        c.join().expect("caller panicked");
    }
}
