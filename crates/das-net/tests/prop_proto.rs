//! Property tests over the wire protocol: every message the protocol
//! can express must survive encode → frame → decode bit-exactly, and
//! the decoder must reject mutations rather than misparse them.

use std::io::Cursor;

use das_net::{read_frame, read_message, write_message, Message, NetError};
use das_net::{ErrorCode, Role, WireStats, MAX_PAYLOAD};
use das_pfs::LayoutPolicy;
use proptest::prelude::*;

fn arb_policy() -> BoxedStrategy<LayoutPolicy> {
    prop_oneof![
        Just(LayoutPolicy::RoundRobin),
        (1u64..64).prop_map(|group| LayoutPolicy::Grouped { group }),
        (1u64..64).prop_map(|group| LayoutPolicy::GroupedReplicated { group }),
    ]
    .boxed()
}

fn arb_dist() -> BoxedStrategy<das_pfs::DistributionInfo> {
    (1usize..1 << 20, 1u32..64, arb_policy(), any::<u64>())
        .prop_map(|(strip_size, servers, policy, file_len)| das_pfs::DistributionInfo {
            strip_size,
            servers,
            policy,
            file_len,
        })
        .boxed()
}

fn arb_name() -> BoxedStrategy<String> {
    "[a-zA-Z0-9_./-]{0,40}".boxed()
}

fn arb_payload() -> BoxedStrategy<Vec<u8>> {
    // Zero-length payloads included by construction; the max-length
    // frame is exercised deterministically below (too big to draw
    // hundreds of times).
    proptest::collection::vec(any::<u8>(), 0..2048).boxed()
}

fn arb_error_code() -> BoxedStrategy<ErrorCode> {
    prop_oneof![
        Just(ErrorCode::NoSuchFile),
        Just(ErrorCode::DuplicateName),
        Just(ErrorCode::OutOfBounds),
        Just(ErrorCode::NoSuchServer),
        Just(ErrorCode::StripNotLocal),
        Just(ErrorCode::StripLengthMismatch),
        Just(ErrorCode::UnknownOperator),
        Just(ErrorCode::GeometryMismatch),
        Just(ErrorCode::FallbackToNormalIo),
        Just(ErrorCode::BadRequest),
        Just(ErrorCode::Internal),
        Just(ErrorCode::Retryable),
    ]
    .boxed()
}

/// Every variant of the protocol, with arbitrary field values.
fn arb_message() -> BoxedStrategy<Message> {
    prop_oneof![
        (any::<bool>(), any::<u32>(), any::<u32>()).prop_map(|(s, peer_id, caps)| Message::Hello {
            role: if s { Role::Server } else { Role::Client },
            peer_id,
            caps,
        }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(server_id, caps)| Message::HelloOk { server_id, caps }),
        (arb_name(), any::<u64>(), any::<u32>(), arb_policy(), any::<u32>()).prop_map(
            |(name, file_len, strip_size, policy, servers)| Message::CreateFile {
                name,
                file_len,
                strip_size,
                policy,
                servers,
            }
        ),
        any::<u32>().prop_map(|file| Message::CreateFileOk { file }),
        (any::<u32>(), any::<u64>(), arb_payload())
            .prop_map(|(file, strip, payload)| Message::PutStrip { file, strip, payload }),
        Just(Message::PutStripOk),
        (any::<u32>(), any::<u64>()).prop_map(|(file, strip)| Message::GetStrip { file, strip }),
        arb_payload().prop_map(|payload| Message::StripData { payload }),
        arb_name().prop_map(|name| Message::Lookup { name }),
        (any::<u32>(), arb_dist()).prop_map(|(file, dist)| Message::LookupOk { file, dist }),
        any::<u32>().prop_map(|file| Message::GetDistribution { file }),
        arb_dist().prop_map(|dist| Message::DistributionResp { dist }),
        (any::<u32>(), arb_policy())
            .prop_map(|(file, policy)| Message::RedistPrepare { file, policy }),
        (any::<u64>(), any::<u64>()).prop_map(|(fetched_strips, fetched_bytes)| {
            Message::RedistPrepareOk { fetched_strips, fetched_bytes }
        }),
        (any::<u32>(), arb_policy())
            .prop_map(|(file, policy)| Message::RedistCommit { file, policy }),
        Just(Message::RedistCommitOk),
        (any::<u32>(), any::<u32>(), arb_name(), any::<u64>(), any::<bool>(), any::<bool>())
            .prop_map(|(file, out_file, kernel, img_width, successive, force)| {
                Message::Execute {
                    file,
                    out_file,
                    kernel,
                    img_width,
                    element_size: 4,
                    successive,
                    force,
                }
            }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(strips_computed, dep_fetches, dep_fetch_bytes)| Message::ExecuteOk {
                strips_computed,
                dep_fetches,
                dep_fetch_bytes,
            }
        ),
        Just(Message::Stats),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(client_in, client_out, server_in, server_out)| Message::StatsResp(WireStats {
                client_in,
                client_out,
                server_in,
                server_out,
            })
        ),
        Just(Message::ResetStats),
        Just(Message::ResetStatsOk),
        Just(Message::MetricsDump),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(|bytes| Message::MetricsText {
            text: String::from_utf8_lossy(&bytes).into_owned(),
        }),
        any::<u64>().prop_map(|trace| Message::TraceDump { trace }),
        arb_payload().prop_map(|spans| Message::TraceDumpResp { spans }),
        any::<u32>().prop_map(|per_class| Message::SlowLog { per_class }),
        arb_payload().prop_map(|spans| Message::SlowLogResp { spans }),
        Just(Message::Ping),
        Just(Message::Pong),
        Just(Message::Shutdown),
        Just(Message::ShutdownOk),
        (arb_error_code(), arb_name())
            .prop_map(|(code, message)| Message::Error { code, message }),
    ]
    .boxed()
}

fn frame_roundtrip(msg: &Message) -> Message {
    let mut buf = Vec::new();
    write_message(&mut buf, msg).expect("encode");
    let mut cursor = Cursor::new(buf);
    let back = read_message(&mut cursor).expect("decode").expect("one frame");
    // The frame must also consume the stream exactly.
    assert!(read_message(&mut cursor).expect("clean EOF").is_none());
    back
}

proptest! {
    #[test]
    fn every_message_roundtrips_through_a_frame(msg in arb_message()) {
        let back = frame_roundtrip(&msg);
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn payload_decode_is_the_inverse_of_encode(msg in arb_message()) {
        let payload = msg.encode_payload();
        let back = Message::decode(msg.opcode(), &payload).expect("decode");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn truncating_any_prefix_never_panics(msg in arb_message(), cut in any::<u16>()) {
        let payload = msg.encode_payload();
        if !payload.is_empty() {
            let cut = (cut as usize) % payload.len();
            // Shorter payloads must error or decode to something —
            // never panic. (Fixed-width tails can still parse; a
            // trailing-garbage check covers the other direction.)
            let _ = Message::decode(msg.opcode(), &payload[..cut]);
        }
    }

    #[test]
    fn appending_garbage_is_rejected(msg in arb_message(), extra in 1usize..8) {
        let mut payload = msg.encode_payload();
        payload.extend(std::iter::repeat_n(0xAB, extra));
        prop_assert!(Message::decode(msg.opcode(), &payload).is_err());
    }

    #[test]
    fn any_single_bit_flip_in_a_frame_is_rejected(
        msg in arb_message(),
        pos in any::<u32>(),
        bit in 0u8..8,
    ) {
        // The frame checksum must catch any corruption of the header
        // or payload, and the trailer itself; flipping one bit
        // anywhere must yield a typed error — never a panic, never a
        // misparsed message. The single exception is the bit that IS
        // the checksum flag: clearing it turns the frame into a valid
        // legacy CRC-less frame (accepted for compatibility) whose
        // orphaned 4-byte trailer then desynchronizes the stream,
        // which the *next* read detects.
        let mut frame = das_net::encode_frame(&msg);
        let pos = (pos as usize) % frame.len();
        frame[pos] ^= 1 << bit;
        let mut cursor = Cursor::new(&frame);
        match read_message(&mut cursor) {
            Err(_) => {}
            Ok(got) => {
                prop_assert_eq!(pos, 6, "corruption outside the flag byte parsed: {:?}", got);
                prop_assert_eq!(bit, 0, "unknown flag bit survived: {:?}", got);
                prop_assert_eq!(got, Some(msg.clone()), "flag-cleared frame misparsed");
                prop_assert!(
                    read_message(&mut cursor).is_err(),
                    "orphaned checksum trailer went undetected"
                );
            }
        }
    }

    #[test]
    fn traced_frames_roundtrip_message_and_trace_id(msg in arb_message(), trace in any::<u64>()) {
        let frame = das_net::encode_frame_traced(&msg, Some(trace));
        let mut cursor = Cursor::new(&frame);
        let (back, got_trace) = read_frame(&mut cursor).expect("decode").expect("one frame");
        prop_assert_eq!(back, msg);
        prop_assert_eq!(got_trace, Some(trace));
        prop_assert!(read_frame(&mut cursor).expect("clean EOF").is_none());
    }

    #[test]
    fn any_single_bit_flip_in_a_traced_frame_is_rejected(
        msg in arb_message(),
        trace in any::<u64>(),
        pos in any::<u32>(),
        bit in 0u8..8,
    ) {
        // Same contract as the untraced property: the checksum covers
        // the header, the trace field and the payload, so one flipped
        // bit yields a typed error. Two exceptions, both in the flag
        // byte (pos 6): bit 0 clears FLAG_CRC, producing a valid
        // CRC-less traced frame whose orphaned trailer desyncs the
        // next read; bit 1 clears FLAG_TRACE, shifting the reader's
        // payload window over the trace field so the checksum compares
        // unrelated bytes (astronomically unlikely to pass, but not
        // structurally impossible — tolerated if it ever does).
        let mut frame = das_net::encode_frame_traced(&msg, Some(trace));
        let pos = (pos as usize) % frame.len();
        frame[pos] ^= 1 << bit;
        let mut cursor = Cursor::new(&frame);
        match read_frame(&mut cursor) {
            Err(_) => {}
            Ok(got) => {
                prop_assert_eq!(pos, 6, "corruption outside the flag byte parsed: {:?}", got);
                prop_assert!(bit <= 1, "unknown flag bit survived: {:?}", got);
                if bit == 0 {
                    prop_assert_eq!(
                        got,
                        Some((msg.clone(), Some(trace))),
                        "flag-cleared frame misparsed"
                    );
                    prop_assert!(
                        read_frame(&mut cursor).is_err(),
                        "orphaned checksum trailer went undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_opcodes_are_rejected(op in any::<u8>()) {
        // Opcodes outside the assigned set must fail cleanly even
        // with an empty payload.
        let assigned = [
            0x01, 0x02, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19,
            0x20, 0x21, 0x22, 0x23, 0x30, 0x31, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45,
            0x50, 0x51, 0x52, 0x53, 0x7F,
        ];
        if !assigned.contains(&op) {
            prop_assert!(Message::decode(op, &[]).is_err());
        }
    }
}

#[test]
fn retryable_error_roundtrips_and_is_transient() {
    let msg = Message::Error { code: ErrorCode::Retryable, message: "injected fault".into() };
    assert_eq!(frame_roundtrip(&msg), msg);
    assert!(ErrorCode::Retryable.is_transient());
    assert!(!ErrorCode::Internal.is_transient());
}

#[test]
fn zero_length_strip_payload_roundtrips() {
    let msg = Message::StripData { payload: Vec::new() };
    assert_eq!(frame_roundtrip(&msg), msg);
    let msg = Message::PutStrip { file: 0, strip: 0, payload: Vec::new() };
    assert_eq!(frame_roundtrip(&msg), msg);
}

#[test]
fn max_length_frame_roundtrips_and_one_more_byte_is_refused() {
    // The largest legal frame: a StripData whose blob plus its 4-byte
    // length prefix exactly fills MAX_PAYLOAD.
    let blob_len = MAX_PAYLOAD - 4;
    let payload: Vec<u8> = (0..blob_len).map(|i| (i * 31) as u8).collect();
    let msg = Message::StripData { payload };
    let mut buf = Vec::new();
    write_message(&mut buf, &msg).unwrap();
    let back = read_message(&mut Cursor::new(&buf)).unwrap().unwrap();
    assert_eq!(back, msg);

    // One byte longer and the reader must refuse before allocating:
    // patch the header's length field past the cap.
    let oversize = (MAX_PAYLOAD as u32) + 1;
    buf[8..12].copy_from_slice(&oversize.to_le_bytes());
    match read_message(&mut Cursor::new(&buf)) {
        Err(NetError::Protocol(m)) => assert!(m.contains("cap")),
        other => panic!("expected protocol error, got {other:?}"),
    }
}
