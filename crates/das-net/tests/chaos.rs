//! Chaos suite: boot loopback `dasd` fleets with deterministic fault
//! injection (and real daemon kills), and hold the fault-tolerance
//! layer to its contract:
//!
//! * **Transient faults are absorbed.** Refused accepts, mid-frame
//!   cuts, corrupted checksums, delays and typed `Retryable` refusals
//!   with bounded budgets are retried away; every scheme's output
//!   stays bit-identical to the in-process `run_scheme` ground truth
//!   and no server is marked down.
//! * **A dead server is survivable when its strips have replicas.**
//!   Under `GroupedReplicated { group: 2 }` every strip is a group
//!   boundary, so every strip is replicated on a ring neighbor: with
//!   one daemon killed, striped reads fail over to replicas and an
//!   offloaded execute degrades down the DAS → NAS → normal-I/O
//!   ladder — still completing bit-identically, with every rung
//!   recorded in the report.
//! * **Without replicas the same faults yield typed errors** within
//!   the retry policy's bounded time — never a hang, never a panic.

use std::net::TcpListener;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use das_kernels::{kernel_by_name, workload};
use das_net::{
    run_net_scheme, run_net_scheme_opts, spawn, DasCluster, DasdConfig, DasdHandle, Engine,
    ErrorCode, FaultPlan, Message, NetError, NetScheme, RetryPolicy,
};
use das_pfs::LayoutPolicy;
use das_runtime::{run_scheme, ClusterConfig, DegradeEvent, SchemeKind};

const SERVERS: usize = 4;
const WIDTH: u64 = 256;
const HEIGHT: u64 = 96;
const STRIP: usize = 4096; // 4 rows of 256 f32s per strip → 24 strips

struct Harness {
    handles: Vec<DasdHandle>,
    cluster: DasCluster,
    plans: Vec<Arc<FaultPlan>>,
    addrs: Vec<String>,
}

/// The connection core under test. The suite honours the same
/// `DASD_ENGINE` variable as the `dasd` binary (`evloop` / `threads`)
/// so CI can run every chaos scenario against both engines.
fn engine_under_test() -> Engine {
    std::env::var("DASD_ENGINE")
        .ok()
        .and_then(|v| Engine::parse(&v))
        .unwrap_or_default()
}

/// Boot `servers` daemons on ephemeral loopback ports, installing the
/// given `(server, fault spec)` plans, everything on the fast test
/// retry policy so a worst-case chaos run stays in the low seconds.
fn boot_with(servers: usize, faults: &[(usize, &str)]) -> Harness {
    boot_with_cfg(servers, faults, |c| c)
}

/// [`boot_with`] plus a per-daemon config tweak (pool size, backlog
/// bound, …) applied after the defaults.
fn boot_with_cfg(
    servers: usize,
    faults: &[(usize, &str)],
    tweak: impl Fn(DasdConfig) -> DasdConfig,
) -> Harness {
    let listeners: Vec<TcpListener> = (0..servers)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().unwrap().to_string()).collect();
    let plans: Vec<Arc<FaultPlan>> = (0..servers)
        .map(|i| {
            let spec = faults.iter().find(|(s, _)| *s == i).map_or("", |(_, f)| *f);
            Arc::new(FaultPlan::parse(spec, 0xC4A05 + i as u64).expect("fault spec"))
        })
        .collect();
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            let cfg = DasdConfig::new(i as u32, addrs.clone())
                .with_fault(Arc::clone(&plans[i]))
                .with_retry(RetryPolicy::fast())
                .with_engine(engine_under_test());
            spawn(tweak(cfg), l).expect("spawn dasd")
        })
        .collect();
    let cluster = DasCluster::connect_with(&addrs, RetryPolicy::fast()).expect("connect cluster");
    Harness { handles, cluster, plans, addrs }
}

impl Harness {
    /// Kill one daemon for real: a Shutdown routed only to it. Later
    /// calls to it will fail, retry, and mark it down.
    fn kill_server(&mut self, s: usize) {
        match self.cluster.call(s, &Message::Shutdown) {
            Ok(Message::ShutdownOk) => {}
            other => panic!("killing server {s}: {other:?}"),
        }
    }

    fn teardown(self) {
        self.teardown_except(&[]);
    }

    /// Teardown that skips joining the listed daemons: a daemon under
    /// a persistent accept-refusal fault can never receive Shutdown,
    /// so its accept thread is leaked (it dies with the process).
    fn teardown_except(mut self, leak: &[usize]) {
        self.cluster.shutdown_all().expect("shutdown is best-effort");
        drop(self.cluster); // close client connections so workers exit
        for (i, h) in self.handles.into_iter().enumerate() {
            if !leak.contains(&i) {
                h.join();
            }
        }
    }
}

/// In-process ground truth for one scheme at the chaos geometry.
fn truth_fingerprint(scheme: SchemeKind, input: &das_kernels::Raster) -> u64 {
    let mut cfg = ClusterConfig::paper_default();
    cfg.storage_nodes = SERVERS as u32;
    cfg.compute_nodes = SERVERS as u32;
    cfg.strip_size = STRIP;
    let kernel = kernel_by_name("flow-routing").unwrap();
    run_scheme(&cfg, scheme, kernel.as_ref(), input).output_fingerprint
}

fn tags(events: &[DegradeEvent]) -> Vec<&'static str> {
    events.iter().map(|e| e.tag()).collect()
}

/// Every injected fault class with a bounded budget — refused accept,
/// mid-frame drop, corrupted checksum, delay, transient Retryable, on
/// client and peer connections — is absorbed by retries: all three
/// schemes still produce bit-identical outputs, every budget is fully
/// consumed (the faults really fired), and no server gets marked down.
#[test]
fn transient_faults_of_every_class_are_absorbed() {
    let input = workload::fbm_dem(WIDTH, HEIGHT, 42);
    let data = input.to_bytes();
    let direct = kernel_by_name("flow-routing").unwrap().apply(&input).fingerprint();

    let mut h = boot_with(
        SERVERS,
        &[
            // Client-facing faults on server 0: one refused accept
            // (hit by the initial connect), one mid-frame cut, one
            // corrupted checksum trailer.
            (0, "accept:refuse:x1,client:drop:x1,client:corrupt:x1"),
            // Peer-facing faults on server 1: a dependence fetch gets
            // one mid-frame cut and one typed Retryable; any request
            // class sees two 40ms delays (under the 500ms timeout).
            (1, "server:drop:x1,server:retryable:x1,any:delay=40:x2"),
            // More client-side transient refusals on server 2.
            (2, "client:retryable:x2"),
        ],
    );

    // Two copies of the input: round-robin (forces peer dependence
    // fetches, so server-class faults actually fire) and the paper's
    // replicated layout (the acceptance geometry).
    let rr = h.cluster.create_file("dem.rr", data.len() as u64, STRIP as u32, LayoutPolicy::RoundRobin).unwrap();
    h.cluster.put_file(rr, &data).unwrap();
    let rep = h
        .cluster
        .create_file(
            "dem.rep",
            data.len() as u64,
            STRIP as u32,
            LayoutPolicy::GroupedReplicated { group: 2 },
        )
        .unwrap();
    h.cluster.put_file(rep, &data).unwrap();

    // Striped read through the faults: bit-identical.
    assert_eq!(h.cluster.read_file(rep).unwrap(), data, "striped read corrupted");

    // Offloaded execute on the replicated layout completes offloaded.
    let nas_rep =
        run_net_scheme(&mut h.cluster, NetScheme::Nas, rep, "rep.nas", "flow-routing", WIDTH)
            .unwrap();
    assert!(nas_rep.offloaded, "transient faults must not defeat the offload");
    assert_eq!(nas_rep.output_fingerprint, truth_fingerprint(SchemeKind::Nas, &input));

    // All three schemes over round-robin: dependence fetches and the
    // DAS redistribution cross the faulty peer links.
    let ts = run_net_scheme(&mut h.cluster, NetScheme::Ts, rr, "rr.ts", "flow-routing", WIDTH)
        .unwrap();
    assert_eq!(ts.output_fingerprint, truth_fingerprint(SchemeKind::Ts, &input));
    let nas = run_net_scheme(&mut h.cluster, NetScheme::Nas, rr, "rr.nas", "flow-routing", WIDTH)
        .unwrap();
    assert!(nas.offloaded);
    assert_eq!(nas.output_fingerprint, truth_fingerprint(SchemeKind::Nas, &input));
    let das = run_net_scheme(&mut h.cluster, NetScheme::Das, rr, "rr.das", "flow-routing", WIDTH)
        .unwrap();
    assert!(das.offloaded, "DAS should still offload through transient faults");
    assert_eq!(das.output_fingerprint, truth_fingerprint(SchemeKind::Das, &input));
    assert_eq!(das.output_fingerprint, direct);

    // The faults genuinely fired — every bounded budget was consumed…
    assert_eq!(h.plans[0].total_fired(), 3, "server 0 fired {:?}", h.plans[0].fired());
    assert_eq!(h.plans[1].total_fired(), 4, "server 1 fired {:?}", h.plans[1].fired());
    assert_eq!(h.plans[2].total_fired(), 2, "server 2 fired {:?}", h.plans[2].fired());
    // …and were absorbed below the failover layer: nobody is down.
    assert!(h.cluster.down_servers().is_empty(), "transient faults marked a server down");

    h.teardown();
}

/// The acceptance scenario: kill one daemon of a
/// `GroupedReplicated { group: 2 }` cluster. Every strip of a
/// group-2 layout is a group boundary, so every strip has a replica
/// on a ring neighbor — a striped read and an offloaded execute must
/// both still complete bit-identically, with replica failover and the
/// scheme-degradation ladder recorded in the report.
#[test]
fn dead_server_with_replicas_degrades_but_completes() {
    let input = workload::fbm_dem(WIDTH, HEIGHT, 42);
    let data = input.to_bytes();

    let mut h = boot_with(SERVERS, &[]);
    let file = h
        .cluster
        .create_file(
            "dem.rep",
            data.len() as u64,
            STRIP as u32,
            LayoutPolicy::GroupedReplicated { group: 2 },
        )
        .unwrap();
    h.cluster.put_file(file, &data).unwrap();

    h.kill_server(1);

    // Striped read: strips whose primary was server 1 fail over to
    // their replicas; the result is bit-identical.
    assert_eq!(h.cluster.read_file(file).unwrap(), data, "failover read corrupted");
    let events = h.cluster.take_events();
    assert!(
        events.iter().any(|e| matches!(e, DegradeEvent::ServerUnavailable { server: 1 })),
        "no ServerUnavailable in {:?}",
        tags(&events)
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, DegradeEvent::ReplicaFailover { primary: 1, .. })),
        "no ReplicaFailover in {:?}",
        tags(&events)
    );

    // Offloaded execute: the dead server can no longer compute the
    // strips it primaries, so the offload rungs fail and the run is
    // served as normal I/O — failover reads, tolerant writes — and
    // still matches the in-process ground truth bit for bit.
    let das = run_net_scheme(&mut h.cluster, NetScheme::Das, file, "dead.das", "flow-routing", WIDTH)
        .unwrap();
    assert!(!das.offloaded, "an offload cannot complete without server 1");
    assert_eq!(das.output_fingerprint, truth_fingerprint(SchemeKind::Das, &input));
    let das_tags = tags(&das.degradations);
    assert!(das_tags.contains(&"degraded-to-ts"), "ladder not recorded: {das_tags:?}");
    assert!(das_tags.contains(&"replica-failover"), "no failover recorded: {das_tags:?}");
    assert!(das_tags.contains(&"degraded-write"), "no degraded write recorded: {das_tags:?}");

    // NAS degrades the same way.
    let nas = run_net_scheme(&mut h.cluster, NetScheme::Nas, file, "dead.nas", "flow-routing", WIDTH)
        .unwrap();
    assert!(!nas.offloaded);
    assert_eq!(nas.output_fingerprint, truth_fingerprint(SchemeKind::Nas, &input));
    assert!(tags(&nas.degradations).contains(&"degraded-to-ts"));

    assert_eq!(h.cluster.down_servers(), vec![1]);
    h.teardown();
}

/// The same daemon kill under plain round-robin — no replicas — must
/// yield typed errors within the retry policy's bounded time: no
/// hang, no panic, and the surviving servers still answer.
#[test]
fn dead_server_without_replicas_fails_typed_and_bounded() {
    let input = workload::fbm_dem(WIDTH, HEIGHT, 42);
    let data = input.to_bytes();

    let mut h = boot_with(SERVERS, &[]);
    let file = h
        .cluster
        .create_file("dem.rr", data.len() as u64, STRIP as u32, LayoutPolicy::RoundRobin)
        .unwrap();
    h.cluster.put_file(file, &data).unwrap();

    h.kill_server(1);
    let start = Instant::now();

    // A striped read hits an unreplicated strip on the dead server:
    // typed error, not a hang.
    match h.cluster.read_file(file) {
        Err(NetError::Io(_) | NetError::Remote { .. } | NetError::Protocol(_)) => {}
        other => panic!("expected a typed error, got {other:?}"),
    }

    // The whole ladder fails too — DAS, NAS and TS all need strip 1's
    // data — but each rung fails fast with a typed error.
    for scheme in [NetScheme::Das, NetScheme::Nas, NetScheme::Ts] {
        let name = format!("dead.{}", scheme.name());
        match run_net_scheme(&mut h.cluster, scheme, file, &name, "flow-routing", WIDTH) {
            Err(NetError::Io(_) | NetError::Remote { .. } | NetError::Protocol(_)) => {}
            other => panic!("{scheme:?}: expected a typed error, got {other:?}"),
        }
    }

    // Bounded: the fast policy's worst case is well under this.
    assert!(
        start.elapsed() < Duration::from_secs(60),
        "failure detection took {:?} — retry/timeout budget broken",
        start.elapsed()
    );

    // The survivors are still healthy.
    assert_eq!(h.cluster.down_servers(), vec![1]);
    h.cluster.ping_all().expect("surviving servers must still answer");

    h.teardown();
}

/// Persistent (unlimited-budget) faults on one daemon make it
/// effectively dead from the moment it boots — before the client ever
/// connects. The replicated layout still serves reads and a tolerant
/// connect marks the server down instead of failing the cluster.
#[test]
fn persistently_refusing_server_is_routed_around() {
    let input = workload::fbm_dem(WIDTH, HEIGHT, 7);
    let data = input.to_bytes();

    // Server 3 refuses every connection it ever accepts.
    let mut h = boot_with(SERVERS, &[(3, "accept:refuse")]);
    assert_eq!(h.cluster.down_servers(), vec![3], "refusing server not detected at connect");

    let file = h
        .cluster
        .create_file(
            "dem.rep",
            data.len() as u64,
            STRIP as u32,
            LayoutPolicy::GroupedReplicated { group: 2 },
        )
        .unwrap();
    // Ingest is degraded (server 3's copies can't be written) but
    // every strip still lands on at least one live holder…
    h.cluster.put_file(file, &data).unwrap();
    let events = h.cluster.take_events();
    assert!(
        events.iter().any(|e| matches!(e, DegradeEvent::DegradedWrite { .. })),
        "writes to the dead server should be recorded as degraded"
    );
    // …so the read-back still reassembles the exact input.
    assert_eq!(h.cluster.read_file(file).unwrap(), data);

    assert!(h.plans[3].total_fired() > 0, "the refuse rule never fired");
    // Server 3 can never hear Shutdown — leak its accept thread.
    h.teardown_except(&[3]);
}

/// The observability acceptance scenario: one chaos run that produces
/// all three decision outcomes — a clean DAS offload, a NAS-degraded
/// run (redistribution exhausts a retry budget), and a TS rejection
/// (thrash geometry) — plus a replica failover, then introspects the
/// *live* daemons over the wire (`das stats` via the library API) and
/// holds the registries to the run:
///
/// * summed `dasd_decisions_total` reports ≥ 1 of each of das/nas/ts;
/// * the Eqs. 1–13 predicted dependence counters are nonzero and the
///   measured fleet sum is nonzero (the prediction-error metric is
///   computable);
/// * client retry and degrade counters match the faults that fired.
#[test]
fn live_metrics_expose_decisions_predictions_and_fault_handling() {
    let input = workload::fbm_dem(WIDTH, HEIGHT, 42);
    let data = input.to_bytes();

    let mut h = boot_with(
        SERVERS,
        &[
            // RedistPrepare against server 0 exhausts one full retry
            // budget (fast() = 4 attempts), degrading the first DAS
            // run to a forced NAS offload.
            (0, "redist:retryable:x4"),
            // The first strip read from server 2 exhausts a budget
            // too, forcing a replica failover.
            (2, "get:retryable:x4"),
        ],
    );

    // Replicated copy: the faulty GetStrip path has a replica to fail
    // over to. Read it first so the `get` budget is consumed here and
    // not by a scheme run's verification read-back.
    let rep = h
        .cluster
        .create_file(
            "dem.rep",
            data.len() as u64,
            STRIP as u32,
            LayoutPolicy::GroupedReplicated { group: 2 },
        )
        .unwrap();
    h.cluster.put_file(rep, &data).unwrap();
    assert_eq!(h.cluster.read_file(rep).unwrap(), data, "failover read corrupted");
    let read_tags = tags(&h.cluster.take_events());
    assert!(read_tags.contains(&"replica-failover"), "no failover in {read_tags:?}");

    // Round-robin copy for the offload runs.
    let rr = h
        .cluster
        .create_file("dem.rr", data.len() as u64, STRIP as u32, LayoutPolicy::RoundRobin)
        .unwrap();
    h.cluster.put_file(rr, &data).unwrap();

    // Run 1: redistribution fails → NAS rung → every daemon records a
    // forced ("nas") outcome.
    let nas_run =
        run_net_scheme(&mut h.cluster, NetScheme::Das, rr, "m.nas", "flow-routing", WIDTH).unwrap();
    assert!(nas_run.offloaded, "the NAS rung should absorb the redistribution failure");
    assert!(
        tags(&nas_run.degradations).contains(&"degraded-to-nas"),
        "ladder not recorded: {:?}",
        tags(&nas_run.degradations)
    );

    // Run 2: budgets consumed — a clean DAS offload ("das" outcome).
    let das_run =
        run_net_scheme(&mut h.cluster, NetScheme::Das, rr, "m.das", "flow-routing", WIDTH).unwrap();
    assert!(das_run.offloaded);
    assert!(das_run.degradations.is_empty(), "clean run degraded: {:?}", das_run.degradations);

    // Run 3: a one-shot (non-successive) request on thrash geometry —
    // one row per strip, so per-strip dependence fetches exceed the
    // whole file twice over. The decision gate refuses and the
    // confirming unforced execute lets the daemons record "ts".
    let thrash_input = workload::fbm_dem(64, 256, 9);
    let tdata = thrash_input.to_bytes();
    let thrash = h
        .cluster
        .create_file("thrash.raw", tdata.len() as u64, 256, LayoutPolicy::RoundRobin)
        .unwrap();
    h.cluster.put_file(thrash, &tdata).unwrap();
    let ts_run = run_net_scheme_opts(
        &mut h.cluster,
        NetScheme::Das,
        thrash,
        "m.ts",
        "flow-routing",
        64,
        false,
    )
    .unwrap();
    assert!(!ts_run.offloaded, "thrash geometry must be rejected one-shot");

    // Live introspection: pull every daemon's registry over the wire.
    let dumps = h.cluster.metrics_dump_all().expect("metrics dump");
    assert_eq!(dumps.len(), SERVERS);
    let (mut das_n, mut nas_n, mut ts_n) = (0.0, 0.0, 0.0);
    let (mut pred_max, mut meas_sum) = (0.0f64, 0.0f64);
    for (_id, text) in &dumps {
        let s = das_obs::parse(text);
        let outcome = |o| das_obs::sample_value(&s, "dasd_decisions_total", &[("outcome", o)]);
        das_n += outcome("das").unwrap_or(0.0);
        nas_n += outcome("nas").unwrap_or(0.0);
        ts_n += outcome("ts").unwrap_or(0.0);
        pred_max = pred_max
            .max(das_obs::sample_value(&s, "dasd_predicted_dep_fetch_bytes_total", &[])
                .unwrap_or(0.0));
        meas_sum +=
            das_obs::sample_value(&s, "dasd_dep_fetch_bytes_total", &[]).unwrap_or(0.0);
    }
    assert!(das_n >= 1.0, "no das outcome recorded (das={das_n} nas={nas_n} ts={ts_n})");
    assert!(nas_n >= 1.0, "no nas outcome recorded (das={das_n} nas={nas_n} ts={ts_n})");
    assert!(ts_n >= 1.0, "no ts outcome recorded (das={das_n} nas={nas_n} ts={ts_n})");
    assert!(pred_max > 0.0, "predicted dependence counters are empty");
    assert!(meas_sum > 0.0, "no dependence fetch was measured (forced NAS run should)");

    // Client-side fault handling: two exhausted 4-attempt budgets are
    // 3 recorded retries each, and each degrade event was counted.
    let cs = das_obs::parse(&h.cluster.metrics().encode());
    let retries = das_obs::sample_value(&cs, "das_client_retries_total", &[]).unwrap_or(0.0);
    assert!(retries >= 6.0, "expected ≥ 6 client retries, saw {retries}");
    for ev in ["replica-failover", "degraded-to-nas"] {
        let n = das_obs::sample_value(&cs, "das_client_degrade_events_total", &[("event", ev)])
            .unwrap_or(0.0);
        assert!(n >= 1.0, "degrade counter {ev} not incremented");
    }

    // The budgets really were consumed by the scenario above.
    assert_eq!(h.plans[0].total_fired(), 4, "server 0 fired {:?}", h.plans[0].fired());
    assert_eq!(h.plans[2].total_fired(), 4, "server 2 fired {:?}", h.plans[2].fired());

    h.teardown();
}

/// The degrade-event/metrics invariant: after a chaos run the client
/// registry's `das_client_degrade_events_total{event=…}` counters are
/// exactly the multiset of [`DegradeEvent::tag`]s the run reported —
/// the two can never disagree because the counter is bumped at the
/// same site that records the event.
#[test]
fn client_degrade_counters_match_recorded_events() {
    let input = workload::fbm_dem(WIDTH, HEIGHT, 42);
    let data = input.to_bytes();

    let mut h = boot_with(SERVERS, &[]);
    let file = h
        .cluster
        .create_file(
            "dem.rep",
            data.len() as u64,
            STRIP as u32,
            LayoutPolicy::GroupedReplicated { group: 2 },
        )
        .unwrap();
    h.cluster.put_file(file, &data).unwrap();
    h.kill_server(1);

    // Exercise every event kind: a failover read, then the full
    // DAS → NAS → normal-I/O ladder against the dead server.
    let mut all: Vec<DegradeEvent> = Vec::new();
    assert_eq!(h.cluster.read_file(file).unwrap(), data, "failover read corrupted");
    all.extend(h.cluster.take_events());
    let das = run_net_scheme(&mut h.cluster, NetScheme::Das, file, "cnt.das", "flow-routing", WIDTH)
        .unwrap();
    assert!(!das.offloaded);
    all.extend(das.degradations);
    assert!(!all.is_empty(), "scenario produced no degrade events");

    let mut counted: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for e in &all {
        *counted.entry(e.tag()).or_insert(0) += 1;
    }

    // Draining events does NOT reset the registry, so the counters
    // must equal the event counts — including zero for tags that
    // never fired.
    let cs = das_obs::parse(&h.cluster.metrics().encode());
    for tag in
        ["server-unavailable", "replica-failover", "degraded-write", "degraded-to-nas", "degraded-to-ts"]
    {
        let events = counted.get(tag).copied().unwrap_or(0);
        let counter =
            das_obs::sample_value(&cs, "das_client_degrade_events_total", &[("event", tag)])
                .unwrap_or(0.0) as u64;
        assert_eq!(counter, events, "counter vs reported events disagree for {tag:?}");
    }

    h.teardown();
}

/// The tail-tolerance acceptance scenario: one daemon of three serves
/// every `GetStrip` 300ms late — slow, not dead (think a page-cache
/// miss storm or a neighbour's `Execute` hogging the disk). Hedged
/// reads must bound the whole-file read *under a single fault delay*:
/// every slow strip is raced against its replica after the EWMA-derived
/// hedge delay and the replica's bit-identical reply wins. A slow
/// server is never marked down, and once the losing racers' 300ms
/// replies have fed the latency tracker, the next read demotes the
/// straggler in every replica walk and completes fast with no hedges.
#[test]
fn slow_server_is_hedged_around_and_then_demoted() {
    const DELAY_MS: u64 = 300;
    let input = workload::fbm_dem(WIDTH, HEIGHT, 42);
    let data = input.to_bytes();

    // `get`-class fault only: ingest (PutStrip) stays fast, so the put
    // warms every server's EWMA with healthy samples — exactly the
    // state in which a sudden straggler must be caught by the hedge,
    // because the ordering hysteresis still (rightly) trusts server 1.
    let mut h = boot_with(3, &[(1, "get:delay=300:x500")]);
    let file = h
        .cluster
        .create_file(
            "dem.rep",
            data.len() as u64,
            STRIP as u32,
            LayoutPolicy::GroupedReplicated { group: 2 },
        )
        .unwrap();
    h.cluster.put_file(file, &data).unwrap();

    let start = Instant::now();
    assert_eq!(h.cluster.read_file(file).unwrap(), data, "hedged read corrupted");
    let elapsed = start.elapsed();
    // 8 of the 24 strips are primaried on the slow server; un-hedged
    // the read would take ≥ 8 × 300ms. Bounded under ONE delay proves
    // every slow strip was raced to its replica instead of waited out.
    assert!(elapsed < Duration::from_millis(DELAY_MS), "hedging did not bound the read: {elapsed:?}");

    // Each hedge win is a proactive replica failover, visible both as
    // a degrade event and in the client registry…
    let read_tags = tags(&h.cluster.take_events());
    assert!(read_tags.contains(&"replica-failover"), "no failover in {read_tags:?}");
    let cs = das_obs::parse(&h.cluster.metrics().encode());
    let hedges = das_obs::sample_value(&cs, "das_client_hedges_total", &[]).unwrap_or(0.0);
    let wins = das_obs::sample_value(&cs, "das_client_hedge_wins_total", &[]).unwrap_or(0.0);
    assert!(hedges >= 8.0, "expected ≥ 8 hedged strips, saw {hedges}");
    assert!(wins >= 8.0, "expected ≥ 8 hedge wins, saw {wins}");
    // …and a slow server is never a *down* server.
    assert!(h.cluster.down_servers().is_empty(), "a slow server must not be marked down");

    // Let the losing racers land their 300ms replies: each feeds the
    // slow server's EWMA, so the next read starts from an honest
    // straggler estimate and orders the replica first.
    std::thread::sleep(Duration::from_millis(DELAY_MS + 100));
    let start = Instant::now();
    assert_eq!(h.cluster.read_file(file).unwrap(), data, "demoted read corrupted");
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_millis(150),
        "straggler demotion did not keep the read off the slow server: {elapsed:?}"
    );

    // The slow strips really were raced on the wire: one delay fired
    // per hedged primary GetStrip.
    assert!(h.plans[1].total_fired() >= 8, "server 1 fired {:?}", h.plans[1].fired());
    h.teardown();
}

/// Admission control under a ~2× open-loop burst: one daemon with a
/// two-request gate and a 60ms `GetStrip` service time is hammered by
/// six concurrent single-attempt clients. Every response must be
/// either the strip or a typed, transient `Overloaded` — no hangs, no
/// protocol violations — every client-visible shed must be counted in
/// the daemon's own registry, and once the burst drains a normal
/// retrying client completes cleanly: sheds are recoverable by design.
#[test]
fn overloaded_daemon_sheds_typed_and_recovers() {
    const BURST_CLIENTS: usize = 6;
    const CALLS_PER_CLIENT: usize = 4;
    let engine = engine_under_test();
    let input = workload::fbm_dem(64, 64, 5); // 16 KiB → 4 strips
    let data = input.to_bytes();

    let mut h = boot_with_cfg(1, &[(0, "get:delay=60:x1000")], |mut cfg| {
        // EventLoop: two workers, so the bounded queue really fills;
        // Threads: the pool must stay above the burst's connection
        // count (its gate counts executing handlers instead).
        cfg.pool = match engine {
            Engine::EventLoop => 2,
            Engine::Threads => 16,
        };
        cfg.with_max_backlog(2)
    });
    let file = h
        .cluster
        .create_file("dem.small", data.len() as u64, STRIP as u32, LayoutPolicy::RoundRobin)
        .unwrap();
    h.cluster.put_file(file, &data).unwrap();

    // Single-attempt clients: a shed must surface as the typed error,
    // not be papered over by the retry layer.
    let one_shot = RetryPolicy {
        max_attempts: 1,
        read_timeout: Duration::from_secs(5),
        ..RetryPolicy::fast()
    };
    let barrier = Arc::new(Barrier::new(BURST_CLIENTS));
    let writers: Vec<_> = (0..BURST_CLIENTS)
        .map(|_| {
            let addrs = h.addrs.clone();
            let pol = one_shot.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = DasCluster::connect_with(&addrs, pol).expect("burst connect");
                barrier.wait();
                let (mut ok, mut shed) = (0u64, 0u64);
                for _ in 0..CALLS_PER_CLIENT {
                    match c.call(0, &Message::GetStrip { file, strip: 0 }) {
                        Ok(Message::StripData { .. }) => ok += 1,
                        Err(NetError::Remote { code: ErrorCode::Overloaded, .. }) => shed += 1,
                        other => panic!("overload burst: unexpected {other:?}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    let (mut ok, mut shed) = (0u64, 0u64);
    for w in writers {
        let (o, s) = w.join().expect("burst client");
        ok += o;
        shed += s;
    }
    assert!(ok >= 1, "overload starved every request (ok={ok} shed={shed})");
    assert!(shed >= 1, "2× load never tripped admission control (ok={ok} shed={shed})");

    // Every client-visible shed is one server-side counted shed, and
    // MetricsDump itself is shed-exempt — observable under overload.
    let dump = h.cluster.metrics_dump(0).expect("MetricsDump is shed-exempt");
    let s = das_obs::parse(&dump);
    let backlog = das_obs::sample_value(&s, "dasd_requests_shed_total", &[("reason", "backlog")])
        .unwrap_or(0.0);
    assert!(backlog >= shed as f64, "registry saw {backlog} backlog sheds, clients saw {shed}");

    // EventLoop only (the threads engine has no queue to wait in): a
    // request whose deadline budget expires while it is queued behind
    // slow work is shed as `deadline`, never executed late.
    if engine == Engine::EventLoop {
        let go = Arc::new(Barrier::new(3));
        let primers: Vec<_> = (0..2)
            .map(|_| {
                let addrs = h.addrs.clone();
                let pol = one_shot.clone();
                let go = Arc::clone(&go);
                std::thread::spawn(move || {
                    let mut c = DasCluster::connect_with(&addrs, pol).expect("primer connect");
                    go.wait();
                    let _ = c.call(0, &Message::GetStrip { file, strip: 0 });
                })
            })
            .collect();
        go.wait();
        // Both workers are now busy for 60ms; a 10ms budget cannot
        // survive the queue wait behind them.
        std::thread::sleep(Duration::from_millis(10));
        let tiny = RetryPolicy {
            max_attempts: 1,
            read_timeout: Duration::from_millis(10),
            ..RetryPolicy::fast()
        };
        let mut c = DasCluster::connect_with(&h.addrs, tiny).expect("budget client");
        let _ = c.call(0, &Message::GetStrip { file, strip: 0 }); // times out client-side
        for p in primers {
            p.join().unwrap();
        }
        let s = das_obs::parse(&h.cluster.metrics_dump(0).expect("metrics dump"));
        let expired =
            das_obs::sample_value(&s, "dasd_requests_shed_total", &[("reason", "deadline")])
                .unwrap_or(0.0);
        assert!(expired >= 1.0, "queued past its budget but not deadline-shed");
    }

    // Recovery: the burst has drained; the harness cluster's retry
    // policy backs off on `Overloaded` and reads back bit-identically.
    assert_eq!(h.cluster.read_file(file).unwrap(), data, "post-overload read corrupted");
    assert!(h.cluster.down_servers().is_empty(), "overload must never mark a server down");
    h.teardown();
}

/// Regression: the full CLI lifecycle with *separate* clients per
/// step (each `das` invocation is a fresh process) and daemons on the
/// default (slow-backoff) retry policy. After one daemon dies, the
/// surviving servers' replica forwards to it must fail fast (circuit
/// breaker) instead of adding a retry budget of latency per boundary
/// strip — without that, an offloading server exceeds the client's
/// reply deadline, gets wrongly marked down, and the ladder's final
/// normal-I/O rung finds strips whose primary ("slow" server) and
/// replica (dead server) are both unavailable, leaking a typed error
/// for data that is perfectly reachable.
#[test]
fn fresh_clients_and_slow_daemons_survive_a_dead_peer() {
    let input = workload::fbm_dem(WIDTH, HEIGHT, 42);
    let data = input.to_bytes();

    // Daemons on the DEFAULT retry policy (2s backoff cap), server 0
    // additionally under transient client-side faults. No with_retry:
    // this is exactly the production `dasd` configuration.
    let listeners: Vec<TcpListener> = (0..SERVERS)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().unwrap().to_string()).collect();
    let handles: Vec<DasdHandle> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| {
            let mut cfg = DasdConfig::new(i as u32, addrs.clone());
            if i == 0 {
                cfg = cfg.with_fault(Arc::new(
                    FaultPlan::parse("client:retryable:x2,any:delay=30:x1", 1).unwrap(),
                ));
            }
            spawn(cfg, l).expect("spawn dasd")
        })
        .collect();
    // Tight client policy, like `das --attempts 3 --timeout-ms 500`.
    let tight = Duration::from_millis(500);
    let pol = RetryPolicy {
        max_attempts: 3,
        connect_timeout: tight,
        read_timeout: tight,
        write_timeout: tight,
        ..RetryPolicy::default()
    };

    {
        let mut c = DasCluster::connect_with(&addrs, pol.clone()).unwrap();
        let f = c
            .create_file(
                "dem.rep",
                data.len() as u64,
                STRIP as u32,
                LayoutPolicy::GroupedReplicated { group: 2 },
            )
            .unwrap();
        c.put_file(f, &data).unwrap();
    }
    {
        let mut c = DasCluster::connect_with(&addrs, pol.clone()).unwrap();
        let (f, _) = c.lookup("dem.rep").unwrap();
        let r = run_net_scheme(&mut c, NetScheme::Nas, f, "rep.nas", "flow-routing", WIDTH)
            .unwrap();
        assert!(r.offloaded);
    }
    {
        let mut c = DasCluster::connect_with(&addrs, pol.clone()).unwrap();
        match c.call(1, &Message::Shutdown) {
            Ok(Message::ShutdownOk) => {}
            o => panic!("killing server 1: {o:?}"),
        }
    }
    {
        let mut c = DasCluster::connect_with(&addrs, pol.clone()).unwrap();
        let (f, _) = c.lookup("dem.rep").unwrap();
        assert_eq!(c.read_file(f).unwrap(), data, "failover read corrupted");
    }
    {
        let mut c = DasCluster::connect_with(&addrs, pol.clone()).unwrap();
        let (f, _) = c.lookup("dem.rep").unwrap();
        let r = run_net_scheme(&mut c, NetScheme::Das, f, "rep.das", "flow-routing", WIDTH)
            .unwrap_or_else(|e| panic!("ladder leaked a reachable-data request: {e}"));
        assert_eq!(r.output_fingerprint, truth_fingerprint(SchemeKind::Das, &input));
        assert!(tags(&r.degradations).contains(&"degraded-to-ts"));
        c.shutdown_all().unwrap();
    }
    for h in handles {
        h.join();
    }
}
