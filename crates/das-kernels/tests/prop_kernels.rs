//! Property tests on kernel semantics: invariances, ranges, and the
//! strip-level processing path agreeing with whole-raster application.

use das_kernels::{
    flow_accumulation_global, workload, ElemSource, FlowAccumulationStep, FlowRouting,
    GaussianFilter, Kernel, MedianFilter, Raster, RasterSource, SlopeAnalysis,
};
use proptest::prelude::*;

fn arb_raster() -> impl Strategy<Value = Raster> {
    (2u64..24, 2u64..24, any::<u64>()).prop_map(|(w, h, seed)| workload::fbm_dem(w, h, seed))
}

fn all_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(FlowRouting),
        Box::new(FlowAccumulationStep),
        Box::new(GaussianFilter),
        Box::new(MedianFilter),
        Box::new(SlopeAnalysis),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn process_range_agrees_with_apply(r in arb_raster()) {
        for k in all_kernels() {
            let full = k.apply(&r);
            let src = RasterSource(&r);
            let cells = r.cells();
            // Process in three uneven chunks.
            let cut1 = cells / 3;
            let cut2 = 2 * cells / 3;
            let mut out = vec![0.0f32; cells as usize];
            k.process_range(&src, 0, &mut out[..cut1 as usize]);
            k.process_range(&src, cut1, &mut out[cut1 as usize..cut2 as usize]);
            k.process_range(&src, cut2, &mut out[cut2 as usize..]);
            for (i, &v) in out.iter().enumerate() {
                prop_assert_eq!(
                    v.to_bits(),
                    full.get_linear(i as u64).to_bits(),
                    "kernel {} element {}", k.name(), i
                );
            }
        }
    }

    #[test]
    fn flow_codes_are_valid_and_acyclic(r in arb_raster()) {
        let dirs = FlowRouting.apply(&r);
        for &c in dirs.as_slice() {
            prop_assert!(c.fract() == 0.0 && (0.0..=8.0).contains(&c));
        }
        // Global accumulation panics on cycles; finishing proves acyclicity.
        let acc = flow_accumulation_global(&dirs);
        prop_assert!(acc.as_slice().iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn step_accumulation_bounds(r in arb_raster()) {
        let dirs = FlowRouting.apply(&r);
        let acc = FlowAccumulationStep.apply(&dirs);
        // Own unit plus at most 8 direct inflows.
        for &v in acc.as_slice() {
            prop_assert!((1.0..=9.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_is_bounded_and_constant_preserving(
        r in arb_raster(),
        c in -100.0f32..100.0,
    ) {
        let out = GaussianFilter.apply(&r);
        let (lo, hi) = r.min_max();
        let (olo, ohi) = out.min_max();
        prop_assert!(olo >= lo - 1e-4 && ohi <= hi + 1e-4);

        let flat = Raster::filled(r.width(), r.height(), c);
        let out = GaussianFilter.apply(&flat);
        for &v in out.as_slice() {
            prop_assert!((v - c).abs() <= c.abs() * 1e-6 + 1e-6);
        }
    }

    #[test]
    fn median_output_values_come_from_input(r in arb_raster()) {
        let out = MedianFilter.apply(&r);
        // Median of a window is a member of the window.
        let src = RasterSource(&r);
        for row in 0..r.height() {
            for col in 0..r.width() {
                let v = out.get(row, col);
                let mut found = false;
                for dr in -1i64..=1 {
                    for dc in -1i64..=1 {
                        if src.get_clamped(row as i64 + dr, col as i64 + dc) == v {
                            found = true;
                        }
                    }
                }
                prop_assert!(found, "median value not in window at ({row},{col})");
            }
        }
    }

    #[test]
    fn slope_nonnegative_and_zero_at_global_minimum(r in arb_raster()) {
        let out = SlopeAnalysis.apply(&r);
        prop_assert!(out.as_slice().iter().all(|&v| v >= 0.0));
        // The global minimum cell has no downhill neighbor.
        let (lo, _) = r.min_max();
        'outer: for row in 0..r.height() {
            for col in 0..r.width() {
                if r.get(row, col) == lo {
                    prop_assert_eq!(out.get(row, col), 0.0);
                    break 'outer;
                }
            }
        }
    }

    #[test]
    fn global_accumulation_total_mass(r in arb_raster()) {
        // Summing the accumulation of terminal cells (sinks and cells
        // flowing off-map) accounts for every cell exactly once.
        let dirs = FlowRouting.apply(&r);
        let acc = flow_accumulation_global(&dirs);
        let (w, h) = (dirs.width(), dirs.height());
        let mut terminal = 0.0f64;
        for row in 0..h {
            for col in 0..w {
                let code = dirs.get(row, col) as usize;
                let is_terminal = if code == 0 {
                    true
                } else {
                    let (dr, dc) = das_kernels::DIR_OFFSETS[code - 1];
                    let (nr, nc) = (row as i64 + dr, col as i64 + dc);
                    nr < 0 || nc < 0 || nr as u64 >= h || nc as u64 >= w
                };
                if is_terminal {
                    terminal += f64::from(acc.get(row, col));
                }
            }
        }
        prop_assert_eq!(terminal, (w * h) as f64);
    }

    #[test]
    fn serialization_roundtrip_preserves_kernel_outputs(r in arb_raster()) {
        // A raster that has been through file bytes must produce
        // bit-identical kernel output — the property the cross-scheme
        // comparison relies on.
        let bytes = r.to_bytes();
        let back = Raster::from_bytes(r.width(), r.height(), &bytes);
        for k in all_kernels() {
            prop_assert_eq!(
                k.apply(&r).fingerprint(),
                k.apply(&back).fingerprint(),
                "kernel {}", k.name()
            );
        }
    }
}
