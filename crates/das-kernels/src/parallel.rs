//! Data-parallel kernel application over OS threads.
//!
//! Kernels are element-independent, so a raster can be partitioned by
//! rows across threads with no synchronization beyond the join —
//! and because every element is computed by the same code path,
//! the result is **bit-identical** to the sequential
//! [`Kernel::apply`]. Used by the heavier examples and benches to
//! keep the functional (non-simulated) layer fast.

use crossbeam::thread;

use crate::kernel::Kernel;
use crate::raster::Raster;
use crate::source::RasterSource;

/// Apply `kernel` over `input` using up to `threads` OS threads.
///
/// Equivalent to [`Kernel::apply`] (bit-for-bit) for any thread count.
///
/// # Panics
/// Panics if `threads == 0` or a worker panics (kernel bugs propagate).
pub fn apply_parallel(kernel: &dyn Kernel, input: &Raster, threads: usize) -> Raster {
    assert!(threads > 0, "need at least one thread");
    let height = input.height();
    let width = input.width();
    let threads = threads.min(usize::try_from(height).unwrap_or(1)).max(1);

    // Partition rows contiguously; remainder spread over the first
    // workers (same arithmetic as the TS executor's row blocks).
    let base = height / threads as u64;
    let extra = height % threads as u64;
    let block = |i: u64| -> (u64, u64) {
        let start = i * base + i.min(extra);
        let len = base + u64::from(i < extra);
        (start, (start + len).min(height))
    };

    let src = RasterSource(input);
    let mut parts: Vec<(u64, Vec<f32>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|i| {
                let src = &src;
                let kernel = &kernel;
                scope.spawn(move |_| {
                    let (r0, r1) = block(i);
                    let start_elem = r0 * width;
                    let mut out = vec![0.0f32; ((r1 - r0) * width) as usize];
                    kernel.process_range(src, start_elem, &mut out);
                    (start_elem, out)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("kernel worker panicked"))
            .collect()
    })
    .expect("scope");

    parts.sort_by_key(|&(start, _)| start);
    let mut out = Raster::filled(width, height, 0.0);
    for (start, values) in parts {
        for (k, v) in values.into_iter().enumerate() {
            out.set_linear(start + k as u64, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{GaussianFilter, MedianFilter};
    use crate::flow::FlowRouting;
    use crate::workload;

    #[test]
    fn parallel_equals_sequential_bit_for_bit() {
        let input = workload::fbm_dem(97, 61, 5); // awkward dimensions
        for kernel in [
            &FlowRouting as &dyn Kernel,
            &GaussianFilter,
            &MedianFilter,
        ] {
            let seq = kernel.apply(&input);
            for threads in [1, 2, 3, 8, 61, 100] {
                let par = apply_parallel(kernel, &input, threads);
                assert_eq!(
                    par.fingerprint(),
                    seq.fingerprint(),
                    "{} with {threads} threads",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn single_row_raster() {
        let input = workload::fbm_dem(64, 1, 9);
        let seq = GaussianFilter.apply(&input);
        let par = apply_parallel(&GaussianFilter, &input, 8);
        assert_eq!(par.fingerprint(), seq.fingerprint());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let input = workload::fbm_dem(8, 8, 1);
        let _ = apply_parallel(&GaussianFilter, &input, 0);
    }
}
