//! Name-based kernel lookup, mirroring how the DAS prototype matches
//! an incoming active-storage request's operator name to a processing
//! kernel installed on the storage nodes.

use crate::extended::{GaussianFilter5x5, Laplacian4, LocalVariance, PointwiseScale, SobelEdge};
use crate::filters::{GaussianFilter, MedianFilter, SlopeAnalysis};
use crate::flow::{FlowAccumulationStep, FlowRouting};
use crate::kernel::Kernel;

/// The operator names every storage node knows: the paper's Table I
/// kernels first, then the extensions.
pub fn kernel_names() -> &'static [&'static str] {
    &[
        "flow-routing",
        "flow-accumulation",
        "gaussian-filter",
        "median-filter",
        "slope-analysis",
        "sobel-edge",
        "gaussian-filter-5x5",
        "local-variance",
        "laplacian-4",
        "pointwise-scale",
    ]
}

/// Instantiate the kernel registered under `name`, or `None` for an
/// unknown operator (the AS component rejects such requests).
pub fn kernel_by_name(name: &str) -> Option<Box<dyn Kernel>> {
    match name {
        "flow-routing" => Some(Box::new(FlowRouting)),
        "flow-accumulation" => Some(Box::new(FlowAccumulationStep)),
        "gaussian-filter" => Some(Box::new(GaussianFilter)),
        "median-filter" => Some(Box::new(MedianFilter)),
        "slope-analysis" => Some(Box::new(SlopeAnalysis)),
        "sobel-edge" => Some(Box::new(SobelEdge)),
        "gaussian-filter-5x5" => Some(Box::new(GaussianFilter5x5)),
        "local-variance" => Some(Box::new(LocalVariance)),
        "laplacian-4" => Some(Box::new(Laplacian4)),
        "pointwise-scale" => Some(Box::new(PointwiseScale::default())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves_and_matches() {
        for &name in kernel_names() {
            let k = kernel_by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert_eq!(k.name(), name);
            assert!(k.cost_per_element() > 0.0);
        }
    }

    #[test]
    fn unknown_name_rejected() {
        assert!(kernel_by_name("sha256").is_none());
    }
}
