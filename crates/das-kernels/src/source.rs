//! Element sources: how kernels read their input.
//!
//! In the DAS architecture a storage server processes its local strips
//! and may (depending on the scheme) have neighbor strips available as
//! replicas or fetched copies. [`ElemSource`] abstracts over "the data
//! a processing kernel can see": a full raster, or a partial assembly
//! of strips built by the runtime.
//!
//! ### Contract
//!
//! `get(row, col)` returns `None` exactly when the coordinate is
//! outside the raster. For an **in-bounds** coordinate the source MUST
//! return the value — an implementation that cannot (because the byte
//! backing that element was never shipped to this server) must panic
//! with a diagnostic. That panic is a feature: it is how the test
//! suite proves the improved data distribution really makes every
//! dependence locally satisfiable (paper Section III-D) instead of
//! silently computing wrong answers.

use crate::raster::Raster;

/// Read access to a `width × height` grid of `f32` elements.
pub trait ElemSource {
    /// Grid width in elements.
    fn width(&self) -> u64;
    /// Grid height in elements.
    fn height(&self) -> u64;
    /// The element at `(row, col)`; `None` iff out of bounds.
    ///
    /// # Panics
    /// Implementations must panic if the coordinate is in bounds but
    /// the backing data is unavailable (see module docs).
    fn get(&self, row: i64, col: i64) -> Option<f32>;

    /// The element at `(row, col)` with replicate-edge (clamp)
    /// boundary handling — used by the image filters.
    fn get_clamped(&self, row: i64, col: i64) -> f32 {
        let row = row.clamp(0, self.height() as i64 - 1);
        let col = col.clamp(0, self.width() as i64 - 1);
        self.get(row, col).expect("clamped coordinate is in bounds")
    }
}

/// A whole raster as an element source (the reference path).
pub struct RasterSource<'a>(pub &'a Raster);

impl ElemSource for RasterSource<'_> {
    fn width(&self) -> u64 {
        self.0.width()
    }
    fn height(&self) -> u64 {
        self.0.height()
    }
    fn get(&self, row: i64, col: i64) -> Option<f32> {
        self.0.try_get(row, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raster_source_delegates() {
        let r = Raster::from_fn(3, 3, |row, col| (row * 3 + col) as f32);
        let s = RasterSource(&r);
        assert_eq!(s.get(1, 1), Some(4.0));
        assert_eq!(s.get(3, 0), None);
        assert_eq!(s.get(-1, 0), None);
    }

    #[test]
    fn clamping_replicates_edges() {
        let r = Raster::from_fn(3, 3, |row, col| (row * 3 + col) as f32);
        let s = RasterSource(&r);
        assert_eq!(s.get_clamped(-1, -1), 0.0); // clamps to (0,0)
        assert_eq!(s.get_clamped(5, 5), 8.0); // clamps to (2,2)
        assert_eq!(s.get_clamped(1, -7), 3.0); // clamps to (1,0)
    }
}
