//! # das-kernels — data-analysis kernels and synthetic workloads
//!
//! The DAS paper evaluates three data-analysis kernels (its Table I):
//!
//! * **flow-routing** — D8 single-flow-direction computation from
//!   terrain analysis (paper Fig. 1): each cell's flow direction is the
//!   neighbor with the minimum elevation among its 8 neighbors;
//! * **flow-accumulation** — "accumulated weight of all cells flowing
//!   into each downslope cell"; the paper evaluates it as an
//!   8-neighbor stencil over a direction raster (the one-step inflow
//!   count), and this crate additionally provides the full global
//!   O'Callaghan–Mark accumulation as an extension;
//! * **2D Gaussian filter** — 3×3 smoothing from signal/medical image
//!   processing.
//!
//! A **median filter** and a **surface-slope** kernel (both named in
//! the paper's Section III-C list of 8-neighbor operations) round out
//! the set. Every kernel implements the [`Kernel`] trait, which
//! exposes exactly what the DAS architecture needs: the dependence
//! offsets of the operation (paper Section III-B) and a per-element
//! compute cost for the simulator.
//!
//! Kernels read input through the [`ElemSource`] abstraction so the
//! runtime can execute them over *partial* data assemblies (local
//! strips + replicas + fetched halo strips); an assembly missing an
//! element a kernel touches panics loudly, which is how the test suite
//! catches layout/replication bugs.
//!
//! The paper's 24–60 GB terrain datasets are replaced by seeded
//! synthetic workloads ([`workload`]): fractal DEMs (fBm value noise
//! and diamond–square), ramps, noise and impulse images.
//!
//! ## Example
//!
//! ```
//! use das_kernels::{FlowRouting, Kernel, workload};
//!
//! let dem = workload::fbm_dem(64, 64, 42);
//! let dirs = FlowRouting.apply(&dem);
//! assert_eq!(dirs.width(), 64);
//! // Dependence pattern of the kernel, as the DAS descriptor needs it:
//! let offsets = FlowRouting.dependence_offsets(64);
//! assert_eq!(offsets.len(), 8);
//! ```


mod extended;
mod filters;
mod flow;
mod kernel;
mod parallel;
mod raster;
mod registry;
mod source;
pub mod workload;

pub use extended::{GaussianFilter5x5, Laplacian4, LocalVariance, PointwiseScale, SobelEdge};
pub use filters::{GaussianFilter, MedianFilter, SlopeAnalysis};
pub use flow::{flow_accumulation_global, FlowAccumulationStep, FlowRouting, DIR_OFFSETS};
pub use kernel::{eight_neighbor_offsets, four_neighbor_offsets, Kernel};
pub use parallel::apply_parallel;
pub use raster::Raster;
pub use registry::{kernel_by_name, kernel_names};
pub use source::{ElemSource, RasterSource};
