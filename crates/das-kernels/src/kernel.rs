//! The [`Kernel`] trait: what the DAS architecture needs to know about
//! an offloadable operation.
//!
//! The paper's *Kernel Features* component (Section III-B) describes an
//! operation by its name and its dependence offsets; its bandwidth
//! predictor then reasons about those offsets, and its AS helper
//! process finally invokes the processing kernel on server-local data.
//! This trait is the Rust face of all three: identity, dependence
//! pattern, per-element cost, and the element-wise computation itself.

use crate::raster::Raster;
use crate::source::{ElemSource, RasterSource};

/// An offloadable data-analysis operation over a 2-D raster.
///
/// Kernels are element-wise: `process_element` computes one output cell
/// from the input cells named by `dependence_offsets` (plus the cell
/// itself). That structure is exactly what lets the DAS bandwidth
/// model (paper Eqs. 1–5) predict the cost of offloading.
pub trait Kernel: Send + Sync {
    /// Operator name, matching its Kernel Features descriptor.
    fn name(&self) -> &'static str;

    /// Element-offset dependence pattern for a raster of width
    /// `img_width` — the `Dependence:` line of the paper's descriptor
    /// format. The offsets do not include the element itself.
    fn dependence_offsets(&self, img_width: u64) -> Vec<i64>;

    /// Compute cost per element in nanoseconds at unit compute rate
    /// (the cluster model divides by its per-node rate).
    fn cost_per_element(&self) -> f64;

    /// Compute the output cell at `(row, col)`.
    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32;

    /// Reference execution over a whole raster.
    fn apply(&self, input: &Raster) -> Raster {
        let src = RasterSource(input);
        let mut out = Raster::filled(input.width(), input.height(), 0.0);
        for row in 0..input.height() {
            for col in 0..input.width() {
                out.set(row, col, self.process_element(&src, row, col));
            }
        }
        out
    }

    /// Compute the output elements with linear indices
    /// `[start, start + out.len())` — the strip-level entry point used
    /// by storage servers, reading through whatever assembly of strips
    /// the executing scheme has made available.
    fn process_range(&self, src: &dyn ElemSource, start: u64, out: &mut [f32]) {
        let width = src.width();
        for (k, slot) in out.iter_mut().enumerate() {
            let i = start + k as u64;
            let row = i / width;
            let col = i % width;
            *slot = self.process_element(src, row, col);
        }
    }
}

/// The canonical 8-neighbor dependence pattern used by every kernel in
/// the paper's Table I (paper Section III-B example):
/// `-W+1, -W, -W-1, -1, 1, W-1, W, W+1` for image width `W`.
pub fn eight_neighbor_offsets(img_width: u64) -> Vec<i64> {
    let w = img_width as i64;
    vec![-w + 1, -w, -w - 1, -1, 1, w - 1, w, w + 1]
}

/// The 4-neighbor pattern (`-W, -1, 1, W`), the other pattern the paper
/// names as common in data-intensive HEC applications.
pub fn four_neighbor_offsets(img_width: u64) -> Vec<i64> {
    let w = img_width as i64;
    vec![-w, -1, 1, w]
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Identity;
    impl Kernel for Identity {
        fn name(&self) -> &'static str {
            "identity"
        }
        fn dependence_offsets(&self, _img_width: u64) -> Vec<i64> {
            Vec::new()
        }
        fn cost_per_element(&self) -> f64 {
            1.0
        }
        fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
            src.get(row as i64, col as i64).expect("in bounds")
        }
    }

    #[test]
    fn apply_equals_input_for_identity() {
        let r = Raster::from_fn(5, 4, |row, col| (row + 2 * col) as f32);
        let out = Identity.apply(&r);
        assert_eq!(out, r);
    }

    #[test]
    fn process_range_matches_apply() {
        let r = Raster::from_fn(6, 4, |row, col| (row * 6 + col) as f32);
        let full = Identity.apply(&r);
        let src = RasterSource(&r);
        let mut chunk = vec![0.0f32; 9];
        Identity.process_range(&src, 7, &mut chunk);
        for (k, &v) in chunk.iter().enumerate() {
            assert_eq!(v, full.get_linear(7 + k as u64));
        }
    }

    #[test]
    fn eight_neighbor_pattern_matches_paper_example() {
        // Paper Section III-B, flow-routing record with width `imgWidth`.
        let w = 100;
        assert_eq!(
            eight_neighbor_offsets(w),
            vec![-99, -100, -101, -1, 1, 99, 100, 101]
        );
    }

    #[test]
    fn four_neighbor_pattern() {
        assert_eq!(four_neighbor_offsets(10), vec![-10, -1, 1, 10]);
    }
}
