//! Image-processing kernels: Gaussian smoothing, median filtering and
//! surface slope — the 8-neighbor operations from medical imaging and
//! GIS the paper lists in Section III-C.

use crate::kernel::{eight_neighbor_offsets, Kernel};
use crate::source::ElemSource;

/// 3×3 Gaussian smoothing (Table I's third kernel), binomial weights
/// `[1 2 1; 2 4 2; 1 2 1] / 16`, replicate-edge boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussianFilter;

impl Kernel for GaussianFilter {
    fn name(&self) -> &'static str {
        "gaussian-filter"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        eight_neighbor_offsets(img_width)
    }

    fn cost_per_element(&self) -> f64 {
        220.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        const W: [[f32; 3]; 3] = [[1.0, 2.0, 1.0], [2.0, 4.0, 2.0], [1.0, 2.0, 1.0]];
        let (row, col) = (row as i64, col as i64);
        let mut acc = 0.0f32;
        for (i, wr) in W.iter().enumerate() {
            for (j, &w) in wr.iter().enumerate() {
                acc += w * src.get_clamped(row + i as i64 - 1, col + j as i64 - 1);
            }
        }
        acc / 16.0
    }
}

/// 3×3 median filter (impulse-noise removal in medical imaging),
/// replicate-edge boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianFilter;

impl Kernel for MedianFilter {
    fn name(&self) -> &'static str {
        "median-filter"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        eight_neighbor_offsets(img_width)
    }

    fn cost_per_element(&self) -> f64 {
        300.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        let (row, col) = (row as i64, col as i64);
        let mut window = [0.0f32; 9];
        let mut k = 0;
        for dr in -1..=1 {
            for dc in -1..=1 {
                window[k] = src.get_clamped(row + dr, col + dc);
                k += 1;
            }
        }
        // total_cmp gives a total order (no NaNs expected in workloads,
        // but determinism must not depend on that).
        window.sort_unstable_by(f32::total_cmp);
        window[4]
    }
}

/// Surface slope: maximum elevation drop to any of the 8 neighbors
/// (diagonals scaled by 1/√2), in elevation units per cell. Flat or
/// locally-minimal cells report 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlopeAnalysis;

impl Kernel for SlopeAnalysis {
    fn name(&self) -> &'static str {
        "slope-analysis"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        eight_neighbor_offsets(img_width)
    }

    fn cost_per_element(&self) -> f64 {
        200.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        const INV_SQRT2: f32 = std::f32::consts::FRAC_1_SQRT_2;
        let center = src
            .get(row as i64, col as i64)
            .expect("center cell in bounds");
        let mut max_drop = 0.0f32;
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                if let Some(v) = src.get(row as i64 + dr, col as i64 + dc) {
                    let dist = if dr != 0 && dc != 0 { INV_SQRT2 } else { 1.0 };
                    let drop = (center - v) * dist;
                    if drop > max_drop {
                        max_drop = drop;
                    }
                }
            }
        }
        max_drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::Raster;

    #[test]
    fn gaussian_preserves_constant_field() {
        let r = Raster::filled(8, 8, 3.25);
        let out = GaussianFilter.apply(&r);
        for &v in out.as_slice() {
            assert_eq!(v, 3.25);
        }
    }

    #[test]
    fn gaussian_smooths_an_impulse() {
        let mut r = Raster::filled(5, 5, 0.0);
        r.set(2, 2, 16.0);
        let out = GaussianFilter.apply(&r);
        assert_eq!(out.get(2, 2), 4.0); // 16·4/16
        assert_eq!(out.get(2, 1), 2.0); // 16·2/16
        assert_eq!(out.get(1, 1), 1.0); // 16·1/16
        assert_eq!(out.get(0, 0), 0.0);
        // Total mass is conserved away from boundaries.
        assert_eq!(out.sum(), 16.0);
    }

    #[test]
    fn gaussian_output_within_input_range() {
        let r = Raster::from_fn(16, 16, |row, col| ((row * 31 + col * 17) % 97) as f32);
        let (lo, hi) = r.min_max();
        let out = GaussianFilter.apply(&r);
        let (olo, ohi) = out.min_max();
        assert!(olo >= lo && ohi <= hi);
    }

    #[test]
    fn median_removes_salt_noise() {
        let mut r = Raster::filled(5, 5, 1.0);
        r.set(2, 2, 1000.0); // single outlier
        let out = MedianFilter.apply(&r);
        assert_eq!(out.get(2, 2), 1.0);
    }

    #[test]
    fn median_of_constant_is_constant() {
        let r = Raster::filled(6, 3, -2.5);
        let out = MedianFilter.apply(&r);
        assert!(out.as_slice().iter().all(|&v| v == -2.5));
    }

    #[test]
    fn median_hand_computed_window() {
        // 3x3 raster holding 1..9 → median at center is 5.
        let r = Raster::from_fn(3, 3, |row, col| (row * 3 + col + 1) as f32);
        let out = MedianFilter.apply(&r);
        assert_eq!(out.get(1, 1), 5.0);
    }

    #[test]
    fn slope_zero_on_flat_and_rising_terrain() {
        let flat = Raster::filled(4, 4, 7.0);
        assert!(SlopeAnalysis.apply(&flat).as_slice().iter().all(|&v| v == 0.0));
        // A local minimum has no positive drop.
        let mut bowl = Raster::filled(3, 3, 5.0);
        bowl.set(1, 1, 1.0);
        assert_eq!(SlopeAnalysis.apply(&bowl).get(1, 1), 0.0);
    }

    #[test]
    fn slope_measures_steepest_drop() {
        let mut r = Raster::filled(3, 3, 10.0);
        r.set(1, 1, 10.0);
        r.set(1, 0, 4.0); // cardinal drop of 6
        r.set(0, 0, 1.0); // diagonal drop of 9·(1/√2) ≈ 6.36 — steeper
        let out = SlopeAnalysis.apply(&r);
        let expected = 9.0 * std::f32::consts::FRAC_1_SQRT_2;
        assert!((out.get(1, 1) - expected).abs() < 1e-6);
    }

    #[test]
    fn filters_declare_eight_neighbor_dependence() {
        for k in [
            &GaussianFilter as &dyn Kernel,
            &MedianFilter,
            &SlopeAnalysis,
        ] {
            assert_eq!(k.dependence_offsets(128).len(), 8);
        }
    }
}
