//! Extension kernels beyond the paper's Table I.
//!
//! These widen the dependence-pattern space the DAS machinery is
//! exercised against:
//!
//! * [`SobelEdge`] — another 8-neighbor (radius-1) operator, from the
//!   image-processing domain the paper targets;
//! * [`GaussianFilter5x5`] — a **radius-2** stencil: 24 dependence
//!   offsets spanning two rows in each direction, probing how the
//!   planner and predictor handle wider-than-usual patterns;
//! * [`LocalVariance`] — 3×3 windowed variance (texture analysis);
//! * [`PointwiseScale`] — a dependence-**free** operator: the ideal
//!   active-storage case the paper's Section I describes ("each active
//!   storage node does not need to request dependent data"), under
//!   which NAS and DAS coincide.

use crate::kernel::Kernel;
use crate::source::ElemSource;

/// Sobel gradient magnitude (3×3, replicate-edge): classic edge
/// detection over the paper's medical/GIS rasters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SobelEdge;

impl Kernel for SobelEdge {
    fn name(&self) -> &'static str {
        "sobel-edge"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        crate::kernel::eight_neighbor_offsets(img_width)
    }

    fn cost_per_element(&self) -> f64 {
        180.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        let (r, c) = (row as i64, col as i64);
        let px = |dr: i64, dc: i64| src.get_clamped(r + dr, c + dc);
        let gx = (px(-1, 1) + 2.0 * px(0, 1) + px(1, 1))
            - (px(-1, -1) + 2.0 * px(0, -1) + px(1, -1));
        let gy = (px(1, -1) + 2.0 * px(1, 0) + px(1, 1))
            - (px(-1, -1) + 2.0 * px(-1, 0) + px(-1, 1));
        (gx * gx + gy * gy).sqrt()
    }
}

/// 5×5 Gaussian smoothing — a radius-2 stencil with 24 dependence
/// offsets (`±2·imgWidth ± 2 …`). Binomial weights (outer product of
/// `[1 4 6 4 1]/16`), replicate-edge boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussianFilter5x5;

impl Kernel for GaussianFilter5x5 {
    fn name(&self) -> &'static str {
        "gaussian-filter-5x5"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        let w = img_width as i64;
        let mut out = Vec::with_capacity(24);
        for dr in -2i64..=2 {
            for dc in -2i64..=2 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                out.push(dr * w + dc);
            }
        }
        out
    }

    fn cost_per_element(&self) -> f64 {
        450.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        const W: [f32; 5] = [1.0, 4.0, 6.0, 4.0, 1.0];
        let (r, c) = (row as i64, col as i64);
        let mut acc = 0.0f32;
        for (i, wr) in W.iter().enumerate() {
            for (j, wc) in W.iter().enumerate() {
                acc += wr * wc * src.get_clamped(r + i as i64 - 2, c + j as i64 - 2);
            }
        }
        acc / 256.0
    }
}

/// 3×3 local variance (population variance of the window) — texture /
/// heterogeneity analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalVariance;

impl Kernel for LocalVariance {
    fn name(&self) -> &'static str {
        "local-variance"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        crate::kernel::eight_neighbor_offsets(img_width)
    }

    fn cost_per_element(&self) -> f64 {
        160.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        let (r, c) = (row as i64, col as i64);
        let mut sum = 0.0f32;
        let mut sq = 0.0f32;
        for dr in -1..=1 {
            for dc in -1..=1 {
                let v = src.get_clamped(r + dr, c + dc);
                sum += v;
                sq += v * v;
            }
        }
        let mean = sum / 9.0;
        (sq / 9.0 - mean * mean).max(0.0)
    }
}

/// 4-neighbor (von Neumann) Laplacian: `Δx = N + S + E + W − 4·center`
/// with replicate-edge boundary — the paper's *other* common
/// dependence pattern ("the most useful data dependence patterns are
/// 4-neighbor and 8-neighbor patterns", Section III-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct Laplacian4;

impl Kernel for Laplacian4 {
    fn name(&self) -> &'static str {
        "laplacian-4"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        crate::kernel::four_neighbor_offsets(img_width)
    }

    fn cost_per_element(&self) -> f64 {
        100.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        let (r, c) = (row as i64, col as i64);
        src.get_clamped(r - 1, c) + src.get_clamped(r + 1, c) + src.get_clamped(r, c - 1)
            + src.get_clamped(r, c + 1)
            - 4.0 * src.get_clamped(r, c)
    }
}

/// Dependence-free pointwise transform (`x → scale·x + offset`): the
/// paper's ideal offloading case — every storage server processes its
/// local strips with no neighbor data whatsoever.
#[derive(Debug, Clone, Copy)]
pub struct PointwiseScale {
    /// Multiplier.
    pub scale: f32,
    /// Additive offset.
    pub offset: f32,
}

impl Default for PointwiseScale {
    fn default() -> Self {
        PointwiseScale { scale: 1.0, offset: 0.0 }
    }
}

impl Kernel for PointwiseScale {
    fn name(&self) -> &'static str {
        "pointwise-scale"
    }

    fn dependence_offsets(&self, _img_width: u64) -> Vec<i64> {
        Vec::new()
    }

    fn cost_per_element(&self) -> f64 {
        20.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        self.scale * src.get(row as i64, col as i64).expect("center in bounds") + self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::Raster;
    use crate::workload;

    #[test]
    fn sobel_zero_on_constant_strong_on_step() {
        let flat = Raster::filled(8, 8, 5.0);
        assert!(SobelEdge.apply(&flat).as_slice().iter().all(|&v| v == 0.0));

        // Vertical step edge: strong response along the boundary.
        let step = Raster::from_fn(8, 8, |_r, c| if c < 4 { 0.0 } else { 10.0 });
        let out = SobelEdge.apply(&step);
        assert!(out.get(4, 3) > 0.0 || out.get(4, 4) > 0.0);
        // Far from the edge: flat.
        assert_eq!(out.get(4, 1), 0.0);
        assert_eq!(out.get(4, 6), 0.0);
    }

    #[test]
    fn gaussian5x5_constant_preserving_and_bounded() {
        let flat = Raster::filled(10, 10, -1.5);
        for &v in GaussianFilter5x5.apply(&flat).as_slice() {
            assert!((v - -1.5).abs() < 1e-6);
        }
        let noisy = workload::white_noise(16, 16, 4);
        let (lo, hi) = noisy.min_max();
        let (olo, ohi) = GaussianFilter5x5.apply(&noisy).min_max();
        assert!(olo >= lo - 1e-5 && ohi <= hi + 1e-5);
    }

    #[test]
    fn gaussian5x5_declares_24_offsets_spanning_two_rows() {
        let offsets = GaussianFilter5x5.dependence_offsets(100);
        assert_eq!(offsets.len(), 24);
        assert!(offsets.contains(&-202)); // -2·W - 2
        assert!(offsets.contains(&202));
        assert!(offsets.contains(&-1));
        assert!(!offsets.contains(&0));
    }

    #[test]
    fn variance_zero_on_constant_positive_on_noise() {
        let flat = Raster::filled(6, 6, 3.0);
        assert!(LocalVariance.apply(&flat).as_slice().iter().all(|&v| v == 0.0));
        let noisy = workload::white_noise(12, 12, 9);
        let out = LocalVariance.apply(&noisy);
        assert!(out.as_slice().iter().any(|&v| v > 0.0));
        assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn variance_hand_computed() {
        // Window of the center cell: eight 0s and one 9 → mean 1,
        // E[x²] = 9, var = 8.
        let mut r = Raster::filled(3, 3, 0.0);
        r.set(1, 1, 9.0);
        let out = LocalVariance.apply(&r);
        assert!((out.get(1, 1) - 8.0).abs() < 1e-5);
    }

    #[test]
    fn laplacian_zero_on_linear_fields() {
        // The discrete Laplacian annihilates affine functions away
        // from the (clamped) boundary.
        let plane = Raster::from_fn(8, 8, |r, c| 3.0 * r as f32 - 2.0 * c as f32 + 1.0);
        let out = Laplacian4.apply(&plane);
        for r in 1..7 {
            for c in 1..7 {
                assert!(out.get(r, c).abs() < 1e-4, "({r},{c}) = {}", out.get(r, c));
            }
        }
    }

    #[test]
    fn laplacian_detects_a_spike() {
        let r = workload::impulse(5, 5, 2, 2, 4.0);
        let out = Laplacian4.apply(&r);
        assert_eq!(out.get(2, 2), -16.0);
        assert_eq!(out.get(1, 2), 4.0);
        assert_eq!(out.get(0, 0), 0.0);
    }

    #[test]
    fn laplacian_declares_four_neighbor_pattern() {
        assert_eq!(Laplacian4.dependence_offsets(10), vec![-10, -1, 1, 10]);
    }

    #[test]
    fn pointwise_is_affine_and_dependence_free() {
        let r = Raster::from_fn(4, 4, |row, col| (row * 4 + col) as f32);
        let k = PointwiseScale { scale: 2.0, offset: 1.0 };
        let out = k.apply(&r);
        for i in 0..16 {
            assert_eq!(out.get_linear(i), 2.0 * i as f32 + 1.0);
        }
        assert!(k.dependence_offsets(4).is_empty());
    }
}
