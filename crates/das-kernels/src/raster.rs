//! Row-major 2-D rasters of `f32` cells.
//!
//! A raster is the in-memory form of the files the DAS schemes process:
//! a map/image of `height` rows by `width` columns, serialized row-major
//! as little-endian `f32` (element size `E = 4`, the `E` of the paper's
//! equations).

use std::fmt;

/// Size of one raster element in bytes (the paper's `E`).
pub const ELEMENT_SIZE: usize = 4;

/// A dense row-major grid of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Raster {
    width: u64,
    height: u64,
    data: Vec<f32>,
}

impl Raster {
    /// Allocate a raster filled with `fill`.
    ///
    /// # Panics
    /// Panics if either dimension is zero or the cell count overflows.
    pub fn filled(width: u64, height: u64, fill: f32) -> Self {
        assert!(width > 0 && height > 0, "raster dimensions must be positive");
        let cells = usize::try_from(width.checked_mul(height).expect("cell count overflow"))
            .expect("raster fits in memory");
        Raster { width, height, data: vec![fill; cells] }
    }

    /// Build a raster by evaluating `f(row, col)` at every cell.
    pub fn from_fn(width: u64, height: u64, mut f: impl FnMut(u64, u64) -> f32) -> Self {
        let mut r = Raster::filled(width, height, 0.0);
        for row in 0..height {
            for col in 0..width {
                r.set(row, col, f(row, col));
            }
        }
        r
    }

    /// Width in cells.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Height in cells.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Total number of cells.
    pub fn cells(&self) -> u64 {
        self.width * self.height
    }

    /// Size of the serialized raster in bytes.
    pub fn byte_len(&self) -> u64 {
        self.cells() * ELEMENT_SIZE as u64
    }

    fn idx(&self, row: u64, col: u64) -> usize {
        debug_assert!(row < self.height && col < self.width, "({row},{col}) out of range");
        usize::try_from(row * self.width + col).expect("index fits usize")
    }

    /// Read the cell at `(row, col)`.
    ///
    /// # Panics
    /// Panics (in debug) or misindexes (in release) when out of range;
    /// use [`try_get`](Self::try_get) for checked access.
    pub fn get(&self, row: u64, col: u64) -> f32 {
        self.data[self.idx(row, col)]
    }

    /// Checked read; `None` out of range (signed coordinates welcome).
    pub fn try_get(&self, row: i64, col: i64) -> Option<f32> {
        if row < 0 || col < 0 {
            return None;
        }
        let (row, col) = (row as u64, col as u64);
        if row >= self.height || col >= self.width {
            None
        } else {
            Some(self.data[self.idx(row, col)])
        }
    }

    /// Write the cell at `(row, col)`.
    pub fn set(&mut self, row: u64, col: u64, value: f32) {
        let i = self.idx(row, col);
        self.data[i] = value;
    }

    /// Flat (row-major) element read by linear index.
    pub fn get_linear(&self, i: u64) -> f32 {
        self.data[usize::try_from(i).expect("index fits usize")]
    }

    /// Flat (row-major) element write by linear index.
    pub fn set_linear(&mut self, i: u64, value: f32) {
        let i = usize::try_from(i).expect("index fits usize");
        self.data[i] = value;
    }

    /// The underlying row-major cells.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Serialize row-major as little-endian `f32`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * ELEMENT_SIZE);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`to_bytes`](Self::to_bytes) output.
    ///
    /// # Panics
    /// Panics if `bytes.len() != width·height·4`.
    pub fn from_bytes(width: u64, height: u64, bytes: &[u8]) -> Self {
        let cells = usize::try_from(width * height).expect("cell count fits usize");
        assert_eq!(
            bytes.len(),
            cells * ELEMENT_SIZE,
            "byte length does not match {width}x{height} raster"
        );
        let data = bytes
            .chunks_exact(ELEMENT_SIZE)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Raster { width, height, data }
    }

    /// A bit-exact fingerprint of the raster contents (FNV-1a over the
    /// serialized bytes). Used to compare scheme outputs exactly.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf29ce484222325;
        for v in &self.data {
            for b in v.to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x100000001b3);
            }
        }
        hash
    }

    /// Minimum and maximum cell values (NaN cells are ignored).
    pub fn min_max(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        (lo, hi)
    }

    /// Sum of all cells in `f64` (mass-conservation checks).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| f64::from(v)).sum()
    }
}

impl fmt::Display for Raster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Raster {}x{} ({} bytes)", self.width, self.height, self.byte_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let r = Raster::from_fn(3, 2, |row, col| (row * 10 + col) as f32);
        assert_eq!(r.get(0, 0), 0.0);
        assert_eq!(r.get(1, 2), 12.0);
        assert_eq!(r.get_linear(5), 12.0);
        assert_eq!(r.cells(), 6);
        assert_eq!(r.byte_len(), 24);
    }

    #[test]
    fn try_get_bounds() {
        let r = Raster::filled(2, 2, 1.0);
        assert_eq!(r.try_get(0, 0), Some(1.0));
        assert_eq!(r.try_get(-1, 0), None);
        assert_eq!(r.try_get(0, 2), None);
        assert_eq!(r.try_get(2, 0), None);
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let r = Raster::from_fn(7, 5, |row, col| (row as f32).sin() * (col as f32 + 0.5));
        let bytes = r.to_bytes();
        let back = Raster::from_bytes(7, 5, &bytes);
        assert_eq!(r, back);
        assert_eq!(r.fingerprint(), back.fingerprint());
    }

    #[test]
    fn fingerprint_detects_single_bit_change() {
        let a = Raster::filled(4, 4, 0.5);
        let mut b = a.clone();
        b.set(3, 3, 0.5000001);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn min_max_and_sum() {
        let r = Raster::from_fn(2, 2, |row, col| (row * 2 + col) as f32);
        assert_eq!(r.min_max(), (0.0, 3.0));
        assert_eq!(r.sum(), 6.0);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        let _ = Raster::filled(0, 3, 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_bytes_length_checked() {
        let _ = Raster::from_bytes(2, 2, &[0u8; 15]);
    }
}
