//! Terrain-analysis kernels: D8 flow routing and flow accumulation.
//!
//! Flow routing (paper Fig. 1) assigns each cell the direction of its
//! minimum-elevation neighbor; flow accumulation then counts how much
//! water passes through each cell. Both are 8-neighbor operations and
//! are the paper's motivating GIS pipeline (flow-accumulation "always
//! follows" flow-routing and consumes its intermediate raster,
//! Section I).

use crate::kernel::{eight_neighbor_offsets, Kernel};
use crate::raster::Raster;
use crate::source::ElemSource;

/// D8 direction codes → (row, col) displacement. Code 0 is "no
/// outflow" (a sink or flat); codes 1–8 start East and proceed
/// clockwise: E, SE, S, SW, W, NW, N, NE.
pub const DIR_OFFSETS: [(i64, i64); 8] = [
    (0, 1),   // 1: E
    (1, 1),   // 2: SE
    (1, 0),   // 3: S
    (1, -1),  // 4: SW
    (0, -1),  // 5: W
    (-1, -1), // 6: NW
    (-1, 0),  // 7: N
    (-1, 1),  // 8: NE
];

/// D8 single-flow-direction routing (paper Fig. 1, Table I).
///
/// Output cell = the direction code (1–8) of the neighbor with the
/// minimum elevation, provided that minimum is strictly below the
/// center; 0 (sink) otherwise. Off-grid neighbors are skipped. Ties
/// resolve to the lowest direction code, deterministically.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowRouting;

impl Kernel for FlowRouting {
    fn name(&self) -> &'static str {
        "flow-routing"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        eight_neighbor_offsets(img_width)
    }

    fn cost_per_element(&self) -> f64 {
        190.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        let center = src
            .get(row as i64, col as i64)
            .expect("center cell in bounds");
        let mut best_code = 0u8;
        let mut best_val = center;
        for (k, (dr, dc)) in DIR_OFFSETS.iter().enumerate() {
            if let Some(v) = src.get(row as i64 + dr, col as i64 + dc) {
                if v < best_val {
                    best_val = v;
                    best_code = (k + 1) as u8;
                }
            }
        }
        f32::from(best_code)
    }
}

/// One-step flow accumulation: the 8-neighbor stencil the paper's
/// evaluation runs (Table I's second kernel).
///
/// Input is a direction raster from [`FlowRouting`]; output cell =
/// `1 + number of neighbors whose direction code points into the cell`
/// (each cell carries its own unit of water plus direct inflows).
/// This is the per-element, offloadable form; the full upstream count
/// is [`flow_accumulation_global`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowAccumulationStep;

impl Kernel for FlowAccumulationStep {
    fn name(&self) -> &'static str {
        "flow-accumulation"
    }

    fn dependence_offsets(&self, img_width: u64) -> Vec<i64> {
        eight_neighbor_offsets(img_width)
    }

    fn cost_per_element(&self) -> f64 {
        160.0
    }

    fn process_element(&self, src: &dyn ElemSource, row: u64, col: u64) -> f32 {
        let mut inflow = 1.0f32;
        for (dr, dc) in DIR_OFFSETS {
            let (nr, nc) = (row as i64 + dr, col as i64 + dc);
            if let Some(code) = src.get(nr, nc) {
                let code = code as usize;
                if (1..=8).contains(&code) {
                    let (fr, fc) = DIR_OFFSETS[code - 1];
                    if nr + fr == row as i64 && nc + fc == col as i64 {
                        inflow += 1.0;
                    }
                }
            }
        }
        inflow
    }
}

/// Full (global) flow accumulation over a D8 direction raster — the
/// classic O'Callaghan–Mark upstream-area computation, provided as an
/// extension beyond the paper's per-element evaluation form.
///
/// Each cell starts with one unit of water; water flows along the
/// direction codes, and the output is the total units passing through
/// each cell (≥ 1). Cells form a forest (sinks are roots), so a
/// topological peel by in-degree terminates in linear time.
///
/// # Panics
/// Panics if the raster contains an invalid direction code or a
/// 2-cycle (two cells pointing at each other), which a raster produced
/// by [`FlowRouting`] can never contain.
pub fn flow_accumulation_global(dirs: &Raster) -> Raster {
    let (w, h) = (dirs.width(), dirs.height());
    let cells = usize::try_from(w * h).expect("cell count fits usize");
    let target = |i: usize| -> Option<usize> {
        let row = i as u64 / w;
        let col = i as u64 % w;
        let code = dirs.get_linear(i as u64);
        assert!(
            code.fract() == 0.0 && (0.0..=8.0).contains(&code),
            "invalid direction code {code} at ({row},{col})"
        );
        let code = code as usize;
        if code == 0 {
            return None;
        }
        let (dr, dc) = DIR_OFFSETS[code - 1];
        let (nr, nc) = (row as i64 + dr, col as i64 + dc);
        if nr < 0 || nc < 0 || nr as u64 >= h || nc as u64 >= w {
            None // flow off the map edge
        } else {
            Some((nr as u64 * w + nc as u64) as usize)
        }
    };

    let mut indegree = vec![0u32; cells];
    for i in 0..cells {
        if let Some(t) = target(i) {
            indegree[t] += 1;
        }
    }
    let mut acc = vec![1.0f32; cells];
    let mut queue: Vec<usize> = (0..cells).filter(|&i| indegree[i] == 0).collect();
    let mut processed = 0usize;
    while let Some(i) = queue.pop() {
        processed += 1;
        if let Some(t) = target(i) {
            acc[t] += acc[i];
            indegree[t] -= 1;
            if indegree[t] == 0 {
                queue.push(t);
            }
        }
    }
    assert_eq!(processed, cells, "direction raster contains a cycle");

    let mut out = Raster::filled(w, h, 0.0);
    for (i, v) in acc.into_iter().enumerate() {
        out.set_linear(i as u64, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    /// A ramp increasing eastward: every interior cell's lowest
    /// neighbor is directly west.
    fn east_ramp(w: u64, h: u64) -> Raster {
        Raster::from_fn(w, h, |_row, col| col as f32)
    }

    #[test]
    fn routing_on_ramp_points_westward() {
        // Elevation depends on the column only, so W, SW and NW are
        // equally low; the deterministic tie-break picks the lowest
        // code encountered: SW (4) where a next row exists, else W (5).
        let dem = east_ramp(6, 4);
        let dirs = FlowRouting.apply(&dem);
        for row in 0..4 {
            for col in 1..6 {
                let expected = if row < 3 { 4.0 } else { 5.0 };
                assert_eq!(dirs.get(row, col), expected, "({row},{col})");
            }
            // Column 0 has no lower neighbor → sink.
            assert_eq!(dirs.get(row, 0), 0.0);
        }
    }

    #[test]
    fn routing_prefers_steepest_descent_diagonal() {
        // Center 5; SW neighbor lowest.
        let mut dem = Raster::filled(3, 3, 9.0);
        dem.set(1, 1, 5.0);
        dem.set(2, 0, 1.0); // SW
        dem.set(0, 1, 3.0); // N
        let dirs = FlowRouting.apply(&dem);
        assert_eq!(dirs.get(1, 1), 4.0, "SW code is 4");
    }

    #[test]
    fn routing_tie_breaks_to_lowest_code() {
        // Two equal minima E and S → E (code 1) wins.
        let mut dem = Raster::filled(3, 3, 9.0);
        dem.set(1, 1, 5.0);
        dem.set(1, 2, 1.0); // E, code 1
        dem.set(2, 1, 1.0); // S, code 3
        let dirs = FlowRouting.apply(&dem);
        assert_eq!(dirs.get(1, 1), 1.0);
    }

    #[test]
    fn flat_terrain_is_all_sinks() {
        let dem = Raster::filled(5, 5, 2.5);
        let dirs = FlowRouting.apply(&dem);
        assert!(dirs.as_slice().iter().all(|&c| c == 0.0));
    }

    #[test]
    fn step_accumulation_counts_direct_inflows() {
        let dem = east_ramp(5, 1);
        let dirs = FlowRouting.apply(&dem);
        let acc = FlowAccumulationStep.apply(&dirs);
        // Row: 0 <- 1 <- 2 <- 3 <- 4. Each interior cell receives from
        // its single east neighbor; cell 4 receives nothing.
        assert_eq!(acc.get(0, 4), 1.0);
        assert_eq!(acc.get(0, 2), 2.0);
        assert_eq!(acc.get(0, 0), 2.0);
    }

    #[test]
    fn global_accumulation_on_row_is_prefix_count() {
        let dem = east_ramp(6, 1);
        let dirs = FlowRouting.apply(&dem);
        let acc = flow_accumulation_global(&dirs);
        // Cell at column c receives everything east of it plus itself.
        for col in 0..6 {
            assert_eq!(acc.get(0, col), (6 - col) as f32);
        }
    }

    #[test]
    fn global_accumulation_conserves_mass_into_sinks_and_edges() {
        let dem = workload::fbm_dem(32, 32, 7);
        let dirs = FlowRouting.apply(&dem);
        let acc = flow_accumulation_global(&dirs);
        // Every cell passes at least its own unit.
        assert!(acc.as_slice().iter().all(|&v| v >= 1.0));
        // Water leaving through sinks equals total rainfall: the sum of
        // accumulation at sinks (code 0 cells, incl. edge outflows)
        // equals exactly W·H only when no cell flows off the map; with
        // off-map outflow those units are counted at the last on-map
        // cell, which is a code!=0 cell whose target is off-map. Sum
        // over terminal cells (sinks + off-map-flowing) must be 1024.
        let (w, h) = (dirs.width(), dirs.height());
        let mut terminal_sum = 0.0f64;
        for row in 0..h {
            for col in 0..w {
                let code = dirs.get(row, col) as usize;
                let is_terminal = if code == 0 {
                    true
                } else {
                    let (dr, dc) = DIR_OFFSETS[code - 1];
                    let (nr, nc) = (row as i64 + dr, col as i64 + dc);
                    nr < 0 || nc < 0 || nr as u64 >= h || nc as u64 >= w
                };
                if is_terminal {
                    terminal_sum += f64::from(acc.get(row, col));
                }
            }
        }
        assert_eq!(terminal_sum, f64::from(32u16) * 32.0);
    }

    #[test]
    #[should_panic(expected = "invalid direction code")]
    fn global_accumulation_rejects_bad_codes() {
        let mut dirs = Raster::filled(2, 2, 0.0);
        dirs.set(0, 0, 9.0);
        let _ = flow_accumulation_global(&dirs);
    }

    #[test]
    fn kernels_declare_eight_neighbor_dependence() {
        assert_eq!(FlowRouting.dependence_offsets(50).len(), 8);
        assert_eq!(FlowAccumulationStep.dependence_offsets(50).len(), 8);
        assert!(FlowRouting.dependence_offsets(50).contains(&-51));
        assert!(FlowRouting.dependence_offsets(50).contains(&51));
    }
}
