//! Synthetic workload generators.
//!
//! The paper's experiments process 24–60 GB terrain and image data we
//! do not have; these seeded generators produce the structurally
//! equivalent inputs (DESIGN.md documents the substitution): fractal
//! DEMs whose drainage structure exercises flow routing/accumulation
//! realistically, plus ramps, noise and impulse images for targeted
//! tests. All generators are deterministic in their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::raster::Raster;

/// Hash-based lattice noise in `[0, 1)` — the primitive under
/// [`fbm_dem`]. SplitMix64 finalizer over the packed coordinates.
fn lattice(seed: u64, x: u64, y: u64, octave: u32) -> f32 {
    let mut z = seed
        .wrapping_add(x.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(y.wrapping_mul(0xC2B2AE3D27D4EB4F))
        .wrapping_add(u64::from(octave).wrapping_mul(0x165667B19E3779F9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32
}

fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

/// Fractal Brownian-motion DEM of arbitrary dimensions: several
/// octaves of bilinear value noise with persistence ½. Elevations lie
/// in roughly `[0, 2)`. This is the default terrain workload for the
/// figure experiments — drainage basins at several scales, no
/// axis-aligned artifacts.
pub fn fbm_dem(width: u64, height: u64, seed: u64) -> Raster {
    const OCTAVES: u32 = 5;
    let base = width.min(height).max(8) as f32 / 4.0;
    Raster::from_fn(width, height, |row, col| {
        let mut amp = 1.0f32;
        let mut freq = 1.0f32 / base;
        let mut v = 0.0f32;
        for o in 0..OCTAVES {
            let fx = col as f32 * freq;
            let fy = row as f32 * freq;
            let (x0, y0) = (fx.floor() as u64, fy.floor() as u64);
            let (tx, ty) = (smoothstep(fx.fract()), smoothstep(fy.fract()));
            let n00 = lattice(seed, x0, y0, o);
            let n10 = lattice(seed, x0 + 1, y0, o);
            let n01 = lattice(seed, x0, y0 + 1, o);
            let n11 = lattice(seed, x0 + 1, y0 + 1, o);
            let nx0 = n00 + (n10 - n00) * tx;
            let nx1 = n01 + (n11 - n01) * tx;
            v += amp * (nx0 + (nx1 - nx0) * ty);
            amp *= 0.5;
            freq *= 2.0;
        }
        v
    })
}

/// Classic diamond–square fractal terrain on a `(2^k + 1)²` grid.
/// `roughness` in `(0, 1]` controls how fast the displacement decays
/// (higher = craggier).
///
/// # Panics
/// Panics if `k == 0` or `k > 12` (grid would exceed 4097²) or
/// roughness is out of `(0, 1]`.
pub fn diamond_square(k: u32, seed: u64, roughness: f32) -> Raster {
    assert!((1..=12).contains(&k), "k must be in 1..=12");
    assert!(
        roughness > 0.0 && roughness <= 1.0,
        "roughness must be in (0, 1]"
    );
    let n = (1u64 << k) + 1;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = Raster::filled(n, n, 0.0);

    // Seed the corners.
    for &(row, col) in &[(0, 0), (0, n - 1), (n - 1, 0), (n - 1, n - 1)] {
        r.set(row, col, rng.gen_range(0.0..1.0));
    }

    let mut step = n - 1;
    let mut scale = roughness;
    while step > 1 {
        let half = step / 2;
        // Diamond step: centers of squares.
        for row in (half..n).step_by(step as usize) {
            for col in (half..n).step_by(step as usize) {
                let avg = (r.get(row - half, col - half)
                    + r.get(row - half, col + half)
                    + r.get(row + half, col - half)
                    + r.get(row + half, col + half))
                    / 4.0;
                r.set(row, col, avg + rng.gen_range(-scale..scale));
            }
        }
        // Square step: centers of edges.
        for row in (0..n).step_by(half as usize) {
            let col0 = if (row / half).is_multiple_of(2) { half } else { 0 };
            for col in (col0..n).step_by(step as usize) {
                let mut sum = 0.0f32;
                let mut cnt = 0.0f32;
                for (dr, dc) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
                    let (nr, nc) = (row as i64 + dr * half as i64, col as i64 + dc * half as i64);
                    if let Some(v) = r.try_get(nr, nc) {
                        sum += v;
                        cnt += 1.0;
                    }
                }
                r.set(row, col, sum / cnt + rng.gen_range(-scale..scale));
            }
        }
        step = half;
        scale *= roughness;
    }
    r
}

/// A plane increasing along `+col` at rate `dx` and `+row` at rate
/// `dy` — flow on it is fully predictable, which makes hand-checkable
/// tests possible.
pub fn ramp(width: u64, height: u64, dx: f32, dy: f32) -> Raster {
    Raster::from_fn(width, height, |row, col| row as f32 * dy + col as f32 * dx)
}

/// Uniform white noise in `[0, 1)`.
pub fn white_noise(width: u64, height: u64, seed: u64) -> Raster {
    let mut rng = StdRng::seed_from_u64(seed);
    Raster::from_fn(width, height, |_, _| rng.gen_range(0.0..1.0))
}

/// All-zero raster with a single spike of `magnitude` at
/// `(row, col)` — the classic filter test input.
///
/// # Panics
/// Panics if the coordinate is out of range.
pub fn impulse(width: u64, height: u64, row: u64, col: u64, magnitude: f32) -> Raster {
    assert!(row < height && col < width, "impulse out of range");
    let mut r = Raster::filled(width, height, 0.0);
    r.set(row, col, magnitude);
    r
}

/// Constant raster (useful for invariance properties).
pub fn constant(width: u64, height: u64, value: f32) -> Raster {
    Raster::filled(width, height, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fbm_is_deterministic_in_seed() {
        let a = fbm_dem(32, 16, 99);
        let b = fbm_dem(32, 16, 99);
        let c = fbm_dem(32, 16, 100);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn fbm_values_in_expected_band() {
        let r = fbm_dem(64, 64, 3);
        let (lo, hi) = r.min_max();
        assert!(lo >= 0.0 && hi < 2.0, "range [{lo}, {hi}]");
        // Not constant.
        assert!(hi - lo > 0.1);
    }

    #[test]
    fn diamond_square_dimensions_and_determinism() {
        let a = diamond_square(4, 5, 0.6);
        assert_eq!(a.width(), 17);
        assert_eq!(a.height(), 17);
        let b = diamond_square(4, 5, 0.6);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn ramp_gradients() {
        let r = ramp(4, 3, 2.0, 10.0);
        assert_eq!(r.get(0, 0), 0.0);
        assert_eq!(r.get(0, 3), 6.0);
        assert_eq!(r.get(2, 0), 20.0);
        assert_eq!(r.get(2, 3), 26.0);
    }

    #[test]
    fn white_noise_fills_unit_interval() {
        let r = white_noise(50, 50, 1);
        let (lo, hi) = r.min_max();
        assert!(lo >= 0.0 && hi < 1.0);
        assert!(hi - lo > 0.5, "2500 samples should span most of [0,1)");
    }

    #[test]
    fn impulse_single_nonzero() {
        let r = impulse(5, 5, 2, 3, 7.0);
        assert_eq!(r.get(2, 3), 7.0);
        assert_eq!(r.sum(), 7.0);
    }

    #[test]
    #[should_panic(expected = "impulse out of range")]
    fn impulse_bounds_checked() {
        let _ = impulse(5, 5, 5, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn diamond_square_k_checked() {
        let _ = diamond_square(0, 1, 0.5);
    }
}
