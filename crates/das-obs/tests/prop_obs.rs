//! Property tests for the metrics layer: histogram bucketing is
//! monotone and total-preserving under arbitrary `u64` observations,
//! and the Prometheus text encoding round-trips name/label escaping.

use das_obs::metrics::{
    bucket_index, bucket_upper_bound, parse, sample_value, sanitize_name, Registry, HIST_BUCKETS,
};
use proptest::prelude::*;

proptest! {
    // Bucket upper bounds are strictly increasing and every value
    // lands in the bucket whose range contains it.
    #[test]
    fn bucket_boundaries_are_monotone(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        // v is within its bucket's bounds.
        if let Some(ub) = bucket_upper_bound(i) {
            prop_assert!(v <= ub);
        }
        if i > 0 {
            let below = bucket_upper_bound(i - 1).unwrap();
            prop_assert!(v > below, "{v} should be above bucket {} bound {below}", i - 1);
        }
        // Bounds are strictly monotone across all buckets.
        for j in 1..HIST_BUCKETS - 1 {
            prop_assert!(bucket_upper_bound(j).unwrap() > bucket_upper_bound(j - 1).unwrap());
        }
    }

    // Observing any multiset of values preserves the total count and
    // (wrapping) sum, and cumulative bucket counts are monotone with
    // the final cumulative equal to the count.
    #[test]
    fn histogram_is_total_preserving(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let r = Registry::new();
        let h = r.histogram("h", &[]);
        let mut want_sum = 0u64;
        for &v in &values {
            h.observe(v);
            want_sum = want_sum.wrapping_add(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), want_sum);
        let counts = h.bucket_counts();
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total, values.len() as u64);
        // The encoded cumulative series is non-decreasing and ends at
        // the total.
        let text = r.encode();
        let samples = parse(&text);
        let mut last = 0.0f64;
        for s in samples.iter().filter(|s| s.name == "h_bucket") {
            prop_assert!(s.value >= last, "cumulative bucket series decreased");
            last = s.value;
        }
        prop_assert_eq!(
            sample_value(&samples, "h_bucket", &[("le", "+Inf")]),
            Some(values.len() as f64)
        );
        prop_assert_eq!(sample_value(&samples, "h_count", &[]), Some(values.len() as f64));
    }

    // Arbitrary label values — including quotes, backslashes and
    // newlines — survive encode → parse exactly; names are sanitized
    // into the Prometheus alphabet.
    #[test]
    fn prometheus_text_roundtrips_escaping(
        name in "[a-zA-Z_][a-zA-Z0-9_]{0,24}",
        key in "[a-zA-Z_][a-zA-Z0-9_]{0,12}",
        value in prop::collection::vec(prop_oneof![
            Just('\\'), Just('"'), Just('\n'), Just('x'), Just('é'), Just(' '), Just('='),
        ], 0..20),
        n in 0u64..1_000_000,
    ) {
        let value: String = value.into_iter().collect();
        let r = Registry::new();
        r.counter(&name, &[(key.as_str(), value.as_str())]).add(n);
        let samples = parse(&r.encode());
        prop_assert_eq!(samples.len(), 1);
        prop_assert_eq!(&samples[0].name, &sanitize_name(&name));
        prop_assert_eq!(&samples[0].labels, &vec![(sanitize_name(&key), value)]);
        prop_assert_eq!(samples[0].value, n as f64);
    }
}
