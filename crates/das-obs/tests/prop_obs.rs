//! Property tests for the metrics layer (histogram bucketing is
//! monotone and total-preserving under arbitrary `u64` observations,
//! the Prometheus text encoding round-trips name/label escaping) and
//! for the span flight recorder (ring eviction is deterministic
//! against a reference model, the slowest-N reservoir keeps exactly
//! the N largest roots, span nesting survives any finish order, and
//! the wire codec round-trips).

use das_obs::metrics::{
    bucket_index, bucket_upper_bound, parse, sample_value, sanitize_name, Registry, HIST_BUCKETS,
};
use das_obs::{decode_spans, encode_spans, OpClass, SpanRecord, SpanStore, Stage};
use proptest::prelude::*;

/// One recorded span as raw generator output.
#[derive(Debug, Clone)]
struct GenSpan {
    trace: u64,
    stage: usize,
    op: usize,
    note: u8,
    start_us: u64,
    dur_us: u64,
}

fn gen_span() -> impl Strategy<Value = GenSpan> {
    (1u64..=50, 0usize..Stage::ALL.len(), 0usize..OpClass::ALL.len(), 0u8..4, 0u64..10_000, 0u64..10_000)
        .prop_map(|(trace, stage, op, note, start_us, dur_us)| GenSpan {
            trace,
            stage,
            op,
            note,
            start_us,
            dur_us,
        })
}

fn replay(store: &SpanStore, ops: &[GenSpan]) -> Vec<u32> {
    ops.iter()
        .map(|g| {
            store.record(
                g.trace,
                0,
                Stage::ALL[g.stage],
                OpClass::ALL[g.op],
                g.note,
                g.start_us,
                g.dur_us,
            )
        })
        .collect()
}

proptest! {
    // Bucket upper bounds are strictly increasing and every value
    // lands in the bucket whose range contains it.
    #[test]
    fn bucket_boundaries_are_monotone(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        // v is within its bucket's bounds.
        if let Some(ub) = bucket_upper_bound(i) {
            prop_assert!(v <= ub);
        }
        if i > 0 {
            let below = bucket_upper_bound(i - 1).unwrap();
            prop_assert!(v > below, "{v} should be above bucket {} bound {below}", i - 1);
        }
        // Bounds are strictly monotone across all buckets.
        for j in 1..HIST_BUCKETS - 1 {
            prop_assert!(bucket_upper_bound(j).unwrap() > bucket_upper_bound(j - 1).unwrap());
        }
    }

    // Observing any multiset of values preserves the total count and
    // (wrapping) sum, and cumulative bucket counts are monotone with
    // the final cumulative equal to the count.
    #[test]
    fn histogram_is_total_preserving(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let r = Registry::new();
        let h = r.histogram("h", &[]);
        let mut want_sum = 0u64;
        for &v in &values {
            h.observe(v);
            want_sum = want_sum.wrapping_add(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), want_sum);
        let counts = h.bucket_counts();
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total, values.len() as u64);
        // The encoded cumulative series is non-decreasing and ends at
        // the total.
        let text = r.encode();
        let samples = parse(&text);
        let mut last = 0.0f64;
        for s in samples.iter().filter(|s| s.name == "h_bucket") {
            prop_assert!(s.value >= last, "cumulative bucket series decreased");
            last = s.value;
        }
        prop_assert_eq!(
            sample_value(&samples, "h_bucket", &[("le", "+Inf")]),
            Some(values.len() as f64)
        );
        prop_assert_eq!(sample_value(&samples, "h_count", &[]), Some(values.len() as f64));
    }

    // Arbitrary label values — including quotes, backslashes and
    // newlines — survive encode → parse exactly; names are sanitized
    // into the Prometheus alphabet.
    #[test]
    fn prometheus_text_roundtrips_escaping(
        name in "[a-zA-Z_][a-zA-Z0-9_]{0,24}",
        key in "[a-zA-Z_][a-zA-Z0-9_]{0,12}",
        value in prop::collection::vec(prop_oneof![
            Just('\\'), Just('"'), Just('\n'), Just('x'), Just('é'), Just(' '), Just('='),
        ], 0..20),
        n in 0u64..1_000_000,
    ) {
        let value: String = value.into_iter().collect();
        let r = Registry::new();
        r.counter(&name, &[(key.as_str(), value.as_str())]).add(n);
        let samples = parse(&r.encode());
        prop_assert_eq!(samples.len(), 1);
        prop_assert_eq!(&samples[0].name, &sanitize_name(&name));
        prop_assert_eq!(&samples[0].labels, &vec![(sanitize_name(&key), value)]);
        prop_assert_eq!(samples[0].value, n as f64);
    }

    // Ring eviction is strict FIFO and deterministic: replaying the
    // identical record sequence into two stores yields identical span
    // ids, identical eviction counts, and identical dumps for every
    // trace; the eviction count and retained length match the
    // reference model exactly.
    #[test]
    fn span_ring_eviction_matches_reference_model(
        ops in prop::collection::vec(gen_span(), 0..120),
        capacity in 1usize..16,
    ) {
        let a = SpanStore::with_bounds(0, capacity, 4);
        let b = SpanStore::with_bounds(0, capacity, 4);
        let ids_a = replay(&a, &ops);
        let ids_b = replay(&b, &ops);
        prop_assert_eq!(&ids_a, &ids_b, "span id assignment must be deterministic");
        // Ids are assigned 1, 2, 3, … in record order.
        for (i, &id) in ids_a.iter().enumerate() {
            prop_assert_eq!(id as usize, i + 1);
        }
        let n = ops.len();
        prop_assert_eq!(a.evicted(), n.saturating_sub(capacity) as u64);
        prop_assert_eq!(a.len(), n.min(capacity));
        for trace in 1..=50u64 {
            prop_assert_eq!(a.dump_trace(trace), b.dump_trace(trace));
        }
        // The last `capacity` records survive in their trace's dump;
        // evicted non-roots (which cannot hide in the reservoir) do
        // not.
        for (i, g) in ops.iter().enumerate() {
            let id = (i + 1) as u32;
            let retained = a.dump_trace(g.trace).iter().any(|r| r.span == id);
            if i >= n.saturating_sub(capacity) {
                prop_assert!(retained, "ring record {id} vanished");
            } else {
                let root = matches!(Stage::ALL[g.stage], Stage::Dispatch | Stage::Shed);
                if !root {
                    prop_assert!(!retained, "evicted sub-span {id} still dumped");
                }
            }
        }
    }

    // The reservoir holds exactly the N slowest roots of each class:
    // ties break toward the newer record, so the kept set is a pure
    // function of the input sequence.
    #[test]
    fn span_reservoir_keeps_the_n_slowest_roots(
        durs in prop::collection::vec(0u64..50, 1..40),
        slow_n in 1usize..6,
    ) {
        let store = SpanStore::with_bounds(0, 1, slow_n);
        for (i, &d) in durs.iter().enumerate() {
            store.record(1 + i as u64, 0, Stage::Dispatch, OpClass::Get, 0, i as u64, d);
        }
        // Reference: keep the slow_n largest by (dur, seq), seq = index.
        let mut ranked: Vec<(usize, u64)> = durs.iter().copied().enumerate().collect();
        ranked.sort_by_key(|&(i, d)| (std::cmp::Reverse(d), std::cmp::Reverse(i)));
        let mut want: Vec<u32> = ranked.iter().take(slow_n).map(|&(i, _)| (i + 1) as u32).collect();
        want.sort_unstable();
        let mut got: Vec<u32> =
            store.slowest(slow_n).iter().filter(|r| r.parent == 0).map(|r| r.span).collect();
        got.sort_unstable();
        prop_assert_eq!(got, want);
        // Asking for more than the reservoir depth clamps.
        prop_assert!(
            store.slowest(slow_n + 100).iter().filter(|r| r.parent == 0).count()
                <= slow_n.min(durs.len())
        );
    }

    // Nesting lifecycle: a reserved root can finish *after* its
    // children in any interleaving; the dump still links every child
    // to the root and comes back sorted by (start_us, span).
    #[test]
    fn span_nesting_survives_any_finish_order(
        children in prop::collection::vec((0u64..1000, 0u64..1000), 0..12),
        root_last in any::<bool>(),
    ) {
        let store = SpanStore::new(7);
        let trace = 0xABCD;
        let root = store.reserve();
        let finish_root = |s: &SpanStore| {
            s.record_reserved(root, trace, 0, Stage::Dispatch, OpClass::Exec, 0, 0, 5000);
        };
        if !root_last {
            finish_root(&store);
        }
        for &(start, dur) in &children {
            store.record(trace, root, Stage::Kernel, OpClass::Exec, 0, start, dur);
        }
        if root_last {
            finish_root(&store);
        }
        let dump = store.dump_trace(trace);
        prop_assert_eq!(dump.len(), children.len() + 1);
        prop_assert_eq!(dump.iter().filter(|r| r.span == root && r.parent == 0).count(), 1);
        for r in dump.iter().filter(|r| r.span != root) {
            prop_assert_eq!(r.parent, root, "child not linked to its reserved root");
        }
        for w in dump.windows(2) {
            prop_assert!((w[0].start_us, w[0].span) <= (w[1].start_us, w[1].span));
        }
    }

    // The span wire codec round-trips arbitrary records, and any
    // truncation is rejected rather than partially decoded.
    #[test]
    fn span_codec_roundtrips_and_rejects_truncation(
        ops in prop::collection::vec(gen_span(), 0..20),
        cut in 1usize..40,
    ) {
        let records: Vec<SpanRecord> = ops
            .iter()
            .enumerate()
            .map(|(i, g)| SpanRecord {
                trace: g.trace,
                span: (i + 1) as u32,
                parent: 0,
                daemon: 3,
                stage: Stage::ALL[g.stage],
                op: OpClass::ALL[g.op],
                note: g.note,
                start_us: g.start_us,
                dur_us: g.dur_us,
            })
            .collect();
        let blob = encode_spans(&records);
        let decoded = decode_spans(&blob);
        prop_assert_eq!(decoded.as_deref(), Some(&records[..]));
        if !records.is_empty() {
            let cut = cut.min(blob.len() - 1);
            prop_assert_eq!(decode_spans(&blob[..blob.len() - cut]), None);
        }
    }
}
