//! Metrics registry: atomic counters, gauges and log₂ histograms,
//! registered by name + label set and encoded in Prometheus text
//! exposition format.
//!
//! Handles are `Arc`s: registering the same name and labels twice
//! returns the same underlying metric, so hot paths can cache a
//! handle once and bump it lock-free forever after.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge that can move in both directions.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for `0`, one per power of two up
/// to `2^63`, and the top bucket reaching `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// The bucket an observation lands in: `0` holds only zero and bucket
/// `i ≥ 1` holds `[2^(i-1), 2^i - 1]`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`; `None` means unbounded
/// (rendered as `+Inf`).
pub fn bucket_upper_bound(i: usize) -> Option<u64> {
    if i == 0 {
        Some(0)
    } else if i >= HIST_BUCKETS - 1 {
        None
    } else {
        Some((1u64 << i) - 1)
    }
}

/// A log₂-bucketed histogram of `u64` observations (latencies in
/// microseconds, sizes in bytes). The sum wraps on `u64` overflow.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Wrapping sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// observations. `None` if the histogram is empty. See
    /// [`quantile_from_buckets`] for the estimation contract.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        quantile_from_buckets(&self.bucket_counts(), q)
    }
}

/// Inclusive lower bound of bucket `i` (the counterpart of
/// [`bucket_upper_bound`]): `0` for bucket 0, `2^(i-1)` for `i ≥ 1`.
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1).min(63)
    }
}

/// Estimate the `q`-quantile from per-bucket (non-cumulative) counts
/// laid out as [`bucket_index`] does.
///
/// The estimate interpolates linearly inside the bucket the quantile
/// rank lands in, which bounds the error by the bucket's width (a
/// factor-of-two band). The result is monotone in `q`: the rank
/// `q * total` is monotone, and the piecewise-linear inverse CDF it is
/// pushed through is non-decreasing. Edge behaviour: `q ≤ 0` gives the
/// smallest occupied bucket's lower bound, `q ≥ 1` the largest
/// occupied bucket's upper bound, and for the unbounded top bucket the
/// lower bound (`2^63`) is returned rather than inventing an upper
/// edge to interpolate toward. Returns `None` when every bucket is
/// empty.
pub fn quantile_from_buckets(counts: &[u64; HIST_BUCKETS], q: f64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    let target = q.clamp(0.0, 1.0) * total as f64;
    let mut cum = 0u64;
    let mut last_occupied = None;
    for (i, &n) in counts.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let prev = cum;
        cum += n;
        last_occupied = Some(i);
        if (cum as f64) >= target {
            let lo = bucket_lower_bound(i);
            let Some(hi) = bucket_upper_bound(i) else {
                return Some(lo);
            };
            let frac = ((target - prev as f64) / n as f64).clamp(0.0, 1.0);
            return Some(lo + ((hi - lo) as f64 * frac).round() as u64);
        }
    }
    // q ≥ 1 lands exactly on `total`; floating error can overshoot the
    // loop. Fall back to the top occupied bucket's upper edge.
    last_occupied.map(|i| bucket_upper_bound(i).unwrap_or(bucket_lower_bound(i)))
}

/// One registered metric's identity: sanitized name plus label pairs.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, Arc<Counter>>,
    gauges: BTreeMap<Key, Arc<Gauge>>,
    histograms: BTreeMap<Key, Arc<Histogram>>,
}

/// A registry of named metrics. Cloning the `Arc<Registry>` that owns
/// it is the intended sharing model.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

/// Force a string into the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_` and an
/// empty or digit-leading name gains a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    Key {
        name: sanitize_name(name),
        labels: labels
            .iter()
            .map(|(k, v)| (sanitize_name(k), v.to_string()))
            .collect(),
    }
}

fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter registered under `name` + `labels`, creating it on
    /// first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        Arc::clone(self.lock().counters.entry(key(name, labels)).or_default())
    }

    /// The gauge registered under `name` + `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        Arc::clone(self.lock().gauges.entry(key(name, labels)).or_default())
    }

    /// The histogram registered under `name` + `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        Arc::clone(self.lock().histograms.entry(key(name, labels)).or_default())
    }

    /// Encode every metric in Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le=...}` series (only
    /// non-empty buckets, plus the mandatory `+Inf`), `_sum` and
    /// `_count`. Output order is deterministic (sorted by name, then
    /// labels).
    pub fn encode(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let mut last_type: Option<(String, String)> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let cur = Some((name.to_string(), kind.to_string()));
            if last_type != cur {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_type = cur;
            }
        };
        for (k, c) in &inner.counters {
            type_line(&mut out, &k.name, "counter");
            out.push_str(&format!("{}{} {}\n", k.name, fmt_labels(&k.labels, None), c.get()));
        }
        for (k, g) in &inner.gauges {
            type_line(&mut out, &k.name, "gauge");
            out.push_str(&format!("{}{} {}\n", k.name, fmt_labels(&k.labels, None), g.get()));
        }
        for (k, h) in &inner.histograms {
            type_line(&mut out, &k.name, "histogram");
            let counts = h.bucket_counts();
            let mut cum = 0u64;
            for (i, n) in counts.iter().enumerate() {
                cum += n;
                if *n == 0 {
                    continue;
                }
                if let Some(ub) = bucket_upper_bound(i) {
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        k.name,
                        fmt_labels(&k.labels, Some(("le", &ub.to_string()))),
                        cum
                    ));
                }
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                k.name,
                fmt_labels(&k.labels, Some(("le", "+Inf"))),
                h.count()
            ));
            out.push_str(&format!("{}_sum{} {}\n", k.name, fmt_labels(&k.labels, None), h.sum()));
            out.push_str(&format!(
                "{}_count{} {}\n",
                k.name,
                fmt_labels(&k.labels, None),
                h.count()
            ));
        }
        out
    }
}

/// One sample line parsed back out of the text exposition format.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms this includes the `_bucket` /
    /// `_sum` / `_count` suffix).
    pub name: String,
    /// Label pairs in the order they appeared.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

fn unescape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn parse_line(line: &str) -> Option<Sample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (name_labels, value) = match line.find([' ', '\t']) {
        Some(_) => {
            // Split at the last whitespace run: label values may
            // contain spaces, the value never does.
            let idx = line.rfind([' ', '\t'])?;
            (&line[..idx], line[idx + 1..].trim())
        }
        None => return None,
    };
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match name_labels.find('{') {
        None => (name_labels.trim().to_string(), Vec::new()),
        Some(open) => {
            let name = name_labels[..open].trim().to_string();
            let body = name_labels[open + 1..].trim_end().strip_suffix('}')?;
            let bytes = body.as_bytes();
            let mut labels = Vec::new();
            let mut pos = 0usize;
            while pos < body.len() {
                let eq = body[pos..].find('=')? + pos;
                let k = body[pos..eq].trim().to_string();
                let vstart = eq + body[eq..].find('"')? + 1;
                // Scan for the closing unescaped quote.
                let mut i = vstart;
                let mut escaped = false;
                while i < body.len() {
                    match bytes[i] {
                        _ if escaped => escaped = false,
                        b'\\' => escaped = true,
                        b'"' => break,
                        _ => {}
                    }
                    i += 1;
                }
                if i >= body.len() {
                    return None;
                }
                labels.push((k, unescape_label(&body[vstart..i])));
                pos = i + 1;
                while pos < body.len() && matches!(bytes[pos], b',' | b' ' | b'\t') {
                    pos += 1;
                }
            }
            (name, labels)
        }
    };
    Some(Sample { name, labels, value })
}

/// Parse Prometheus text exposition format back into samples.
/// Comment and malformed lines are skipped.
pub fn parse(text: &str) -> Vec<Sample> {
    text.lines().filter_map(parse_line).collect()
}

fn sorted(labels: &[(String, String)]) -> Vec<(String, String)> {
    let mut v = labels.to_vec();
    v.sort();
    v
}

/// Look up the value of the sample matching `name` and exactly the
/// given `labels` (order-insensitive).
pub fn sample_value(samples: &[Sample], name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let want: Vec<(String, String)> =
        sorted(&labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect::<Vec<_>>());
    samples
        .iter()
        .find(|s| s.name == name && sorted(&s.labels) == want)
        .map(|s| s.value)
}

/// Estimate the `q`-quantile of an exposition-format histogram from
/// its cumulative `{name}_bucket` samples: the `le`-labelled lines a
/// [`Registry::encode`] / [`parse`] round trip yields.
///
/// `labels` must match the histogram's non-`le` labels exactly.
/// Interpolates linearly between the previous and current bucket
/// bound, like `histogram_quantile` in PromQL; a quantile landing in
/// the `+Inf` bucket reports the highest finite bound instead of
/// infinity. Returns `None` when no matching bucket samples exist or
/// the histogram is empty.
pub fn histogram_quantile(
    samples: &[Sample],
    name: &str,
    labels: &[(&str, &str)],
    q: f64,
) -> Option<f64> {
    let bucket_name = format!("{name}_bucket");
    let want: Vec<(String, String)> =
        sorted(&labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect::<Vec<_>>());
    // Collect (upper bound, cumulative count) pairs for this series.
    let mut buckets: Vec<(f64, f64)> = Vec::new();
    for s in samples.iter().filter(|s| s.name == bucket_name) {
        let mut le = None;
        let mut rest = Vec::new();
        for (k, v) in &s.labels {
            if k == "le" {
                le = if v == "+Inf" { Some(f64::INFINITY) } else { v.parse().ok() };
            } else {
                rest.push((k.clone(), v.clone()));
            }
        }
        if sorted(&rest) == want {
            buckets.push((le?, s.value));
        }
    }
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = buckets.last().map(|&(_, c)| c)?;
    if total <= 0.0 {
        return None;
    }
    let target = q.clamp(0.0, 1.0) * total;
    let mut prev_bound = 0.0;
    let mut prev_cum = 0.0;
    let mut last_finite = 0.0;
    for &(bound, cum) in &buckets {
        if bound.is_finite() {
            last_finite = bound;
        }
        if cum >= target && cum > prev_cum {
            if !bound.is_finite() {
                return Some(last_finite);
            }
            let frac = ((target - prev_cum) / (cum - prev_cum)).clamp(0.0, 1.0);
            return Some(prev_bound + (bound - prev_bound) * frac);
        }
        if cum > prev_cum {
            prev_cum = cum;
            prev_bound = bound;
        }
    }
    Some(last_finite)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("reqs", &[("op", "ping")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same key → same handle.
        assert_eq!(r.counter("reqs", &[("op", "ping")]).get(), 3);
        let g = r.gauge("depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn bucket_bounds_cover_the_domain() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), Some(0));
        assert_eq!(bucket_upper_bound(1), Some(1));
        assert_eq!(bucket_upper_bound(2), Some(3));
        assert_eq!(bucket_upper_bound(64), None);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(quantile_from_buckets(&[0; HIST_BUCKETS], 0.99), None);
    }

    #[test]
    fn quantile_edge_buckets() {
        // All-zero observations stay pinned to the zero bucket.
        let h = Histogram::default();
        for _ in 0..100 {
            h.observe(0);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(1.0), Some(0));

        // The unbounded top bucket reports its lower edge rather than
        // interpolating toward u64::MAX.
        let h = Histogram::default();
        h.observe(u64::MAX);
        assert_eq!(h.quantile(0.999), Some(1u64 << 63));

        // q outside [0, 1] clamps instead of panicking.
        let h = Histogram::default();
        h.observe(10);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_lands_in_the_right_bucket() {
        let h = Histogram::default();
        // 90 fast observations and 10 slow ones: p50 must sit in the
        // fast band, p99 in the slow band.
        for _ in 0..90 {
            h.observe(100); // bucket [64, 127]
        }
        for _ in 0..10 {
            h.observe(10_000); // bucket [8192, 16383]
        }
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((64..=127).contains(&p50), "p50={p50}");
        assert!((8192..=16383).contains(&p99), "p99={p99}");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::default();
        // A deliberately lumpy distribution with gaps between
        // occupied buckets.
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.observe(x % 1_000_000);
        }
        h.observe(0);
        let mut prev = 0u64;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn histogram_quantile_matches_live_histogram_after_roundtrip() {
        let r = Registry::new();
        let h = r.histogram("das_req_us", &[("op", "get")]);
        for v in [3u64, 50, 50, 700, 700, 700, 9000, 120_000] {
            h.observe(v);
        }
        // A second series that must NOT leak into the lookup.
        r.histogram("das_req_us", &[("op", "put")]).observe(1);
        let samples = parse(&r.encode());
        for q in [0.5, 0.9, 0.99, 0.999] {
            let live = h.quantile(q).unwrap() as f64;
            let parsed = histogram_quantile(&samples, "das_req_us", &[("op", "get")], q).unwrap();
            // Both interpolate within the same log2 bucket, so they
            // agree to within that bucket's width.
            let live_bucket = bucket_index(live as u64);
            let parsed_bucket = bucket_index(parsed.max(0.0) as u64);
            assert!(
                live_bucket == parsed_bucket
                    || live_bucket + 1 == parsed_bucket
                    || parsed_bucket + 1 == live_bucket,
                "q={q}: live={live} (bucket {live_bucket}) parsed={parsed} (bucket {parsed_bucket})"
            );
        }
        assert_eq!(histogram_quantile(&samples, "das_req_us", &[("op", "nope")], 0.5), None);
        assert_eq!(histogram_quantile(&samples, "missing", &[], 0.5), None);
    }

    #[test]
    fn encode_parse_roundtrip() {
        let r = Registry::new();
        r.counter("das_reqs_total", &[("op", "get strip"), ("q", "a\"b\\c\nd")]).add(7);
        r.gauge("das_breaker_open", &[("peer", "2")]).set(1);
        let h = r.histogram("das_lat_us", &[("op", "exec")]);
        h.observe(0);
        h.observe(5);
        h.observe(5000);
        let text = r.encode();
        let samples = parse(&text);
        assert_eq!(
            sample_value(&samples, "das_reqs_total", &[("op", "get strip"), ("q", "a\"b\\c\nd")]),
            Some(7.0)
        );
        assert_eq!(sample_value(&samples, "das_breaker_open", &[("peer", "2")]), Some(1.0));
        assert_eq!(sample_value(&samples, "das_lat_us_count", &[("op", "exec")]), Some(3.0));
        assert_eq!(sample_value(&samples, "das_lat_us_sum", &[("op", "exec")]), Some(5005.0));
        assert_eq!(
            sample_value(&samples, "das_lat_us_bucket", &[("op", "exec"), ("le", "+Inf")]),
            Some(3.0)
        );
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("a b-c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }
}
