//! Dependency-free observability for the DAS stack.
//!
//! Five small pieces, shared by every crate in the workspace:
//!
//! * [`metrics`] — a registry of atomic counters, gauges and
//!   log₂-bucketed histograms, encoded in Prometheus text exposition
//!   format (and parsed back, for tests and the `das stats` CLI);
//! * [`log`] — leveled, targeted structured events with a compact
//!   human format on stderr and an optional JSON-lines sink,
//!   configured via `DASD_LOG` / `DASD_LOG_FORMAT`;
//! * [`ratelimit`] — deterministic per-event-name token buckets over
//!   the event sink, so per-request diagnostics at bench rates
//!   cannot flood stderr (suppression is counted, never silent);
//! * [`trace`] — per-request trace-id minting, carried over the wire
//!   behind the `CAP_TRACE` capability so one offload's cross-server
//!   fan-out is correlatable end to end;
//! * [`span`] — stage-typed span records keyed by those trace ids,
//!   and the bounded per-daemon [`SpanStore`] flight recorder behind
//!   the `TraceDump`/`SlowLog` RPCs.
//!
//! The crate has **no dependencies** (std only) so every layer — the
//! codec, the daemon, the client, the in-process runtime — can afford
//! to link it.

pub mod log;
pub mod metrics;
pub mod ratelimit;
pub mod span;
pub mod trace;

pub use log::{enabled, event, set_json, set_level, Level};
pub use metrics::{
    histogram_quantile, parse, quantile_from_buckets, sample_value, Counter, Gauge, Histogram,
    Registry, Sample,
};
pub use ratelimit::{event_limited, suppressed_total};
pub use span::{
    decode_spans, encode_spans, hedge_sub_id, note_name, OpClass, SpanRecord, SpanStore, Stage,
    NOTE_HEDGE, NOTE_NONE, NOTE_SHED_BACKLOG, NOTE_SHED_DEADLINE,
};
pub use trace::next_trace_id;
