//! Rate-limited structured-event emission.
//!
//! The span/trace layer makes per-request events cheap to want and
//! ruinous to have: at `das bench` rates an unthrottled Debug event
//! per hedge or per traced request would melt stderr and distort the
//! very latencies being measured. [`event_limited`] wraps
//! [`crate::log::event`] with a **deterministic token bucket keyed by
//! event name**: each name may burst [`BURST`] events, then refills
//! at one token per [`REFILL_MS`] milliseconds of monotonic time.
//! No randomness, no sampling — the same event sequence on the same
//! timeline always suppresses the same events.
//!
//! Suppression is never silent: a global counter records every
//! dropped event ([`suppressed_total`]), and daemons mirror it into
//! their metrics registry so `das stats` can show when the throttle
//! engaged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::log::{self, Level};

/// Events one name may emit back-to-back before the throttle engages.
pub const BURST: u32 = 8;

/// Milliseconds of monotonic time that refill one token — the
/// sustained rate is 1000 / `REFILL_MS` events per second per name.
pub const REFILL_MS: u64 = 100;

/// One event name's deterministic token bucket. Public so tests (and
/// other deterministic consumers) can drive it with an explicit
/// clock; the global [`event_limited`] keyed registry wraps it with
/// process-monotonic time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: u32,
    /// Monotonic timestamp the bucket last refilled at, rounded down
    /// to whole refill periods — so refill arithmetic is exact.
    refilled_at: Duration,
}

impl TokenBucket {
    /// A full bucket whose clock starts at `now`.
    pub fn new(now: Duration) -> TokenBucket {
        TokenBucket { tokens: BURST, refilled_at: now }
    }

    /// Admit or suppress one event at monotonic time `now`. Exact
    /// integer arithmetic: `now` before `refilled_at` (never happens
    /// with a monotonic clock) refills nothing.
    pub fn admit(&mut self, now: Duration) -> bool {
        let elapsed_ms = now.saturating_sub(self.refilled_at).as_millis() as u64;
        let refill = elapsed_ms / REFILL_MS;
        if refill > 0 {
            self.tokens = self.tokens.saturating_add(refill.min(u64::from(BURST)) as u32).min(BURST);
            self.refilled_at += Duration::from_millis(refill * REFILL_MS);
        }
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }
}

static SUPPRESSED: AtomicU64 = AtomicU64::new(0);

struct Limiter {
    epoch: Instant,
    buckets: Mutex<HashMap<&'static str, TokenBucket>>,
}

fn limiter() -> &'static Limiter {
    static LIMITER: OnceLock<Limiter> = OnceLock::new();
    LIMITER.get_or_init(|| Limiter { epoch: Instant::now(), buckets: Mutex::new(HashMap::new()) })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Emit one structured event through the per-name token bucket.
///
/// `name` keys the bucket and must be a static string (event names
/// are a closed set; the bucket table must not grow with traffic).
/// A suppressed event only bumps the global suppressed counter.
/// Events the level gate would drop anyway consume no token.
pub fn event_limited(level: Level, target: &str, name: &'static str, fields: &[(&str, String)]) {
    if !log::enabled(level) {
        return;
    }
    let lim = limiter();
    let now = lim.epoch.elapsed();
    let admitted = {
        let mut buckets = lock(&lim.buckets);
        buckets.entry(name).or_insert_with(|| TokenBucket::new(now)).admit(now)
    };
    if admitted {
        log::event(level, target, name, fields);
    } else {
        SUPPRESSED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Events suppressed by the throttle since process start, across all
/// names. Daemons mirror this into `das_obs_events_suppressed_total`.
pub fn suppressed_total() -> u64 {
    SUPPRESSED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn bucket_bursts_then_throttles_then_refills() {
        let mut b = TokenBucket::new(ms(0));
        for _ in 0..BURST {
            assert!(b.admit(ms(0)), "burst must be admitted");
        }
        assert!(!b.admit(ms(0)), "burst exhausted");
        assert!(!b.admit(ms(REFILL_MS - 1)), "one ms short of a token");
        assert!(b.admit(ms(REFILL_MS)), "one refill period → one token");
        assert!(!b.admit(ms(REFILL_MS)), "that token is spent");
        // A long quiet period refills to the cap, not beyond.
        assert!(b.admit(ms(100 * REFILL_MS)));
        for _ in 1..BURST {
            assert!(b.admit(ms(100 * REFILL_MS)));
        }
        assert!(!b.admit(ms(100 * REFILL_MS)));
    }

    #[test]
    fn bucket_is_deterministic() {
        let drive = |times: &[u64]| -> Vec<bool> {
            let mut b = TokenBucket::new(ms(0));
            times.iter().map(|&t| b.admit(ms(t))).collect()
        };
        let times: Vec<u64> = (0..64).map(|i| i * 37).collect();
        assert_eq!(drive(&times), drive(&times), "same timeline → same decisions");
    }

    #[test]
    fn suppressed_events_are_counted() {
        crate::log::disable();
        // Disabled-level events must consume no token and no counter.
        let before = suppressed_total();
        event_limited(Level::Error, "test", "rl-gated-event", &[]);
        assert_eq!(suppressed_total(), before);
        crate::log::set_level(Level::Error);
        let before = suppressed_total();
        for _ in 0..BURST + 3 {
            event_limited(Level::Error, "test", "rl-counted-event", &[]);
        }
        assert_eq!(suppressed_total(), before + 3);
        crate::log::disable();
    }
}
