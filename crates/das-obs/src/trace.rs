//! Per-request trace ids.
//!
//! A client mints one id per logical request and sends it over the
//! wire (behind `CAP_TRACE`); daemons echo it on replies and forward
//! it on peer fetches, so every hop of one offload shares an id.
//! Ids are nonzero, unique within a process, and salted with process
//! id + wall clock so two clients almost never collide.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// The SplitMix64 finalizer — shared with hedge sub-id derivation.
pub(crate) fn mix(x: u64) -> u64 {
    splitmix64(x)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn process_seed() -> u64 {
    static SEED: AtomicU64 = AtomicU64::new(0);
    let s = SEED.load(Ordering::Relaxed);
    if s != 0 {
        return s;
    }
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xDA5_0B5);
    let mut mixed = splitmix64(nanos ^ ((std::process::id() as u64) << 32));
    if mixed == 0 {
        mixed = 1;
    }
    // First caller wins; everyone then reads the same seed.
    let _ = SEED.compare_exchange(0, mixed, Ordering::Relaxed, Ordering::Relaxed);
    SEED.load(Ordering::Relaxed)
}

/// Mint a fresh nonzero trace id.
pub fn next_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(process_seed().wrapping_add(n));
    if id == 0 {
        1
    } else {
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let ids: HashSet<u64> = (0..1000).map(|_| next_trace_id()).collect();
        assert_eq!(ids.len(), 1000);
        assert!(!ids.contains(&0));
    }
}
