//! Per-request span records and the per-daemon flight recorder.
//!
//! A **span** is one timed stage of one request: how long the request
//! sat in the fair queue, how long its frame took to decode, how long
//! the kernel ran, how long a dependence fetch to a peer took. Spans
//! are keyed by the wire-propagated trace id (see `trace`), so the
//! spans one logical request leaves on *every* daemon it touched can
//! be fetched and merged into a cross-daemon waterfall — the daemons
//! never exchange span data among themselves, the `TraceDump` RPC
//! collects it.
//!
//! Timing is monotonic: each store converts `Instant`s to
//! microseconds since its own process-local epoch, so spans recorded
//! by one daemon are mutually comparable but **not** comparable
//! across daemons (no clock sync is assumed — a waterfall renderer
//! aligns each daemon's spans to that daemon's earliest span of the
//! trace).
//!
//! The [`SpanStore`] is a bounded flight recorder: a fixed ring
//! buffer (oldest record evicted first, deterministically) plus a
//! slowest-N reservoir per op class that survives ring eviction, so
//! "why was *that* request slow" stays answerable long after the ring
//! has churned past it.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Poison-recovering lock, same policy as das-net's helper: the store
/// holds plain record state that is valid after any panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The typed stages of the request path a span can time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Stage {
    /// Time between frame decode and a worker picking the request up.
    QueueWait = 0,
    /// Wire-to-`Message` frame decode time.
    Decode = 1,
    /// The whole server-side handling of one request (root span).
    Dispatch = 2,
    /// Reading strips/metadata from the local store.
    LocalRead = 3,
    /// One dependence/redistribution fetch to a peer daemon.
    PeerFetch = 4,
    /// Kernel compute over local strips.
    Kernel = 5,
    /// Assembling/storing/forwarding output strips.
    Assemble = 6,
    /// Reply queued for write until fully flushed to the socket.
    ReplyWrite = 7,
    /// A hedged duplicate racing the primary request (client side).
    HedgeRace = 8,
    /// The request was shed (backlog or expired deadline budget).
    Shed = 9,
}

impl Stage {
    /// Every stage, in discriminant order.
    pub const ALL: [Stage; 10] = [
        Stage::QueueWait,
        Stage::Decode,
        Stage::Dispatch,
        Stage::LocalRead,
        Stage::PeerFetch,
        Stage::Kernel,
        Stage::Assemble,
        Stage::ReplyWrite,
        Stage::HedgeRace,
        Stage::Shed,
    ];

    /// Stable snake_case name (metric label / waterfall row).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Decode => "decode",
            Stage::Dispatch => "dispatch",
            Stage::LocalRead => "local_read",
            Stage::PeerFetch => "peer_fetch",
            Stage::Kernel => "kernel",
            Stage::Assemble => "assemble",
            Stage::ReplyWrite => "reply_write",
            Stage::HedgeRace => "hedge_race",
            Stage::Shed => "shed",
        }
    }

    /// Decode a wire discriminant.
    pub fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.get(v as usize).copied()
    }
}

/// Coarse op classes the reservoir and stage metrics are keyed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum OpClass {
    /// `GetStrip`.
    Get = 0,
    /// `PutStrip`.
    Put = 1,
    /// `Execute`.
    Exec = 2,
    /// `RedistPrepare` / `RedistCommit`.
    Redist = 3,
    /// Metadata ops (`CreateFile`, `Lookup`, `GetDistribution`).
    Meta = 4,
    /// Control plane (ping, stats, dumps, shutdown).
    Control = 5,
    /// Anything else.
    Other = 6,
}

impl OpClass {
    /// Every class, in discriminant order.
    pub const ALL: [OpClass; 7] = [
        OpClass::Get,
        OpClass::Put,
        OpClass::Exec,
        OpClass::Redist,
        OpClass::Meta,
        OpClass::Control,
        OpClass::Other,
    ];

    /// Stable name (metric label / slow-log heading).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::Put => "put",
            OpClass::Exec => "exec",
            OpClass::Redist => "redist",
            OpClass::Meta => "meta",
            OpClass::Control => "control",
            OpClass::Other => "other",
        }
    }

    /// Decode a wire discriminant.
    pub fn from_u8(v: u8) -> Option<OpClass> {
        OpClass::ALL.get(v as usize).copied()
    }
}

/// No annotation on the span.
pub const NOTE_NONE: u8 = 0;
/// The span belongs to a hedged duplicate (distinct hedge sub-id).
pub const NOTE_HEDGE: u8 = 1;
/// The request died at admission: worker backlog full.
pub const NOTE_SHED_BACKLOG: u8 = 2;
/// The request died because its deadline budget expired while queued.
pub const NOTE_SHED_DEADLINE: u8 = 3;

/// Render a note annotation for humans ("" when unannotated).
pub fn note_name(note: u8) -> &'static str {
    match note {
        NOTE_HEDGE => "hedge",
        NOTE_SHED_BACKLOG => "shed:backlog",
        NOTE_SHED_DEADLINE => "shed:deadline",
        _ => "",
    }
}

/// One finished span. Plain data; 40 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The wire-propagated trace id this span belongs to.
    pub trace: u64,
    /// Store-local span id (nonzero, monotonic per daemon).
    pub span: u32,
    /// Parent span id within the same daemon (0 = root).
    pub parent: u32,
    /// Server id of the daemon that recorded the span.
    pub daemon: u32,
    /// Which stage of the request path this span timed.
    pub stage: Stage,
    /// Coarse op class of the enclosing request.
    pub op: OpClass,
    /// Annotation (`NOTE_*`): hedge duplicate, shed reason.
    pub note: u8,
    /// Start, µs since the recording daemon's epoch (monotonic).
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
}

/// Bytes of one encoded [`SpanRecord`].
pub const SPAN_WIRE_LEN: usize = 40;

/// Encode span records into the opaque blob `TraceDumpResp` /
/// `SlowLogResp` carry: `u32` count then fixed 40-byte records, all
/// little-endian.
pub fn encode_spans(spans: &[SpanRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + spans.len() * SPAN_WIRE_LEN);
    out.extend_from_slice(&(spans.len() as u32).to_le_bytes());
    for s in spans {
        out.extend_from_slice(&s.trace.to_le_bytes());
        out.extend_from_slice(&s.span.to_le_bytes());
        out.extend_from_slice(&s.parent.to_le_bytes());
        out.extend_from_slice(&s.daemon.to_le_bytes());
        out.push(s.stage as u8);
        out.push(s.op as u8);
        out.push(s.note);
        out.push(0);
        out.extend_from_slice(&s.start_us.to_le_bytes());
        out.extend_from_slice(&s.dur_us.to_le_bytes());
    }
    out
}

/// Decode a span blob. `None` on any structural violation: length
/// not matching the count, an unknown stage/op discriminant, or a
/// nonzero pad byte — a flipped bit must be rejected, not misread.
pub fn decode_spans(blob: &[u8]) -> Option<Vec<SpanRecord>> {
    let count_bytes: [u8; 4] = blob.get(..4)?.try_into().ok()?;
    let count = u32::from_le_bytes(count_bytes) as usize;
    let body = &blob[4..];
    if body.len() != count.checked_mul(SPAN_WIRE_LEN)? {
        return None;
    }
    let mut out = Vec::with_capacity(count);
    for rec in body.chunks_exact(SPAN_WIRE_LEN) {
        let u64_at = |i: usize| -> Option<u64> {
            Some(u64::from_le_bytes(rec.get(i..i + 8)?.try_into().ok()?))
        };
        let u32_at = |i: usize| -> Option<u32> {
            Some(u32::from_le_bytes(rec.get(i..i + 4)?.try_into().ok()?))
        };
        if rec[23] != 0 {
            return None;
        }
        out.push(SpanRecord {
            trace: u64_at(0)?,
            span: u32_at(8)?,
            parent: u32_at(12)?,
            daemon: u32_at(16)?,
            stage: Stage::from_u8(rec[20])?,
            op: OpClass::from_u8(rec[21])?,
            note: rec[22],
            start_us: u64_at(24)?,
            dur_us: u64_at(32)?,
        });
    }
    Some(out)
}

/// Mint the trace sub-id a hedged duplicate travels under: derived
/// deterministically from the parent id and the race attempt, nonzero
/// and never equal to the parent — so the winner and the loser of a
/// hedge race stay distinguishable in every daemon's spans and
/// metrics instead of aliasing (and double-counting) the original
/// request.
pub fn hedge_sub_id(parent: u64, attempt: u32) -> u64 {
    let mut salt = 0xDA5_0B5u64.wrapping_add(u64::from(attempt));
    loop {
        let id = crate::trace::mix(parent ^ salt);
        if id != 0 && id != parent {
            return id;
        }
        salt = salt.wrapping_add(1);
    }
}

/// Reservoir depth per op class (slowest-N roots kept).
pub const SLOW_N: usize = 8;

/// Default ring capacity (recent spans kept, all classes together).
pub const RING_CAPACITY: usize = 4096;

struct Inner {
    /// Recent spans, oldest first. Bounded by `capacity`; eviction is
    /// strict FIFO, so replaying the same record sequence always
    /// leaves the same ring.
    ring: VecDeque<SpanRecord>,
    /// Next span id to assign (starts at 1; 0 means "no parent").
    next_span: u32,
    /// Insertion sequence number, the deterministic tie-breaker for
    /// the reservoir (equal durations: the newer record wins).
    seq: u64,
    /// Slowest-N root spans per op class, unordered; each entry
    /// carries its insertion seq.
    slow: Vec<Vec<(u64, SpanRecord)>>,
    /// Ring records evicted so far.
    evicted: u64,
}

impl Inner {
    /// Insert one finished record: FIFO-evict the ring at capacity,
    /// and let root stages (`Dispatch`, `Shed`) compete for the
    /// per-class slowest-N reservoir.
    fn insert(&mut self, rec: SpanRecord, capacity: usize, slow_n: usize) {
        if self.ring.len() == capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(rec);
        self.seq += 1;
        let seq = self.seq;
        if rec.stage == Stage::Dispatch || rec.stage == Stage::Shed {
            // Root spans compete for the reservoir: keep the N
            // largest by (duration, seq) — on equal durations the
            // newer record wins, so eviction is deterministic.
            let class = &mut self.slow[rec.op as usize];
            class.push((seq, rec));
            if class.len() > slow_n {
                let min_at = class
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (sq, r))| (r.dur_us, *sq))
                    .map(|(i, _)| i);
                if let Some(i) = min_at {
                    class.swap_remove(i);
                }
            }
        }
    }
}

/// The per-daemon flight recorder: bounded ring of recent spans plus
/// a slowest-N reservoir of root spans per op class.
pub struct SpanStore {
    daemon: u32,
    epoch: Instant,
    capacity: usize,
    slow_n: usize,
    /// Leaf lock (nothing else is acquired while held): the ring and
    /// reservoir state behind every record/dump operation.
    spans: Mutex<Inner>,
}

impl std::fmt::Debug for SpanStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanStore")
            .field("daemon", &self.daemon)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl SpanStore {
    /// A store for daemon `daemon` with the default bounds.
    pub fn new(daemon: u32) -> SpanStore {
        SpanStore::with_bounds(daemon, RING_CAPACITY, SLOW_N)
    }

    /// A store with explicit ring capacity and reservoir depth
    /// (both clamped to ≥ 1).
    pub fn with_bounds(daemon: u32, capacity: usize, slow_n: usize) -> SpanStore {
        SpanStore {
            daemon,
            epoch: Instant::now(),
            capacity: capacity.max(1),
            slow_n: slow_n.max(1),
            spans: Mutex::new(Inner {
                ring: VecDeque::new(),
                next_span: 1,
                seq: 0,
                slow: (0..OpClass::ALL.len()).map(|_| Vec::new()).collect(),
                evicted: 0,
            }),
        }
    }

    /// Microseconds elapsed since this store's epoch — the time base
    /// every span's `start_us` is expressed in.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record one finished span; returns its assigned span id (to be
    /// used as `parent` by sub-spans). Untraced requests (trace 0)
    /// are not recorded — the recorder only holds what `das trace`
    /// could ever look up.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        trace: u64,
        parent: u32,
        stage: Stage,
        op: OpClass,
        note: u8,
        start_us: u64,
        dur_us: u64,
    ) -> u32 {
        if trace == 0 {
            return 0;
        }
        let mut s = lock(&self.spans);
        let span = s.next_span;
        s.next_span = s.next_span.wrapping_add(1).max(1);
        let rec = SpanRecord {
            trace,
            span,
            parent,
            daemon: self.daemon,
            stage,
            op,
            note,
            start_us,
            dur_us,
        };
        s.insert(rec, self.capacity, self.slow_n);
        span
    }

    /// Reserve a span id *before* its stage finishes, so sub-spans
    /// recorded while the stage is still running can link to it as
    /// their parent; pass the id to [`SpanStore::record_reserved`]
    /// when the stage completes. An id reserved for a request that
    /// dies without recording simply goes unused.
    pub fn reserve(&self) -> u32 {
        let mut s = lock(&self.spans);
        let span = s.next_span;
        s.next_span = s.next_span.wrapping_add(1).max(1);
        span
    }

    /// Record one finished span under a previously
    /// [`SpanStore::reserve`]d id. Untraced requests (trace 0) and
    /// the null id are dropped, mirroring [`SpanStore::record`].
    #[allow(clippy::too_many_arguments)]
    pub fn record_reserved(
        &self,
        span: u32,
        trace: u64,
        parent: u32,
        stage: Stage,
        op: OpClass,
        note: u8,
        start_us: u64,
        dur_us: u64,
    ) {
        if trace == 0 || span == 0 {
            return;
        }
        let rec = SpanRecord {
            trace,
            span,
            parent,
            daemon: self.daemon,
            stage,
            op,
            note,
            start_us,
            dur_us,
        };
        let mut s = lock(&self.spans);
        s.insert(rec, self.capacity, self.slow_n);
    }

    /// All retained spans belonging to `trace` (ring and reservoir,
    /// deduplicated), sorted by start time then span id.
    pub fn dump_trace(&self, trace: u64) -> Vec<SpanRecord> {
        let s = lock(&self.spans);
        let mut out: Vec<SpanRecord> =
            s.ring.iter().filter(|r| r.trace == trace).copied().collect();
        for class in &s.slow {
            for (_, r) in class {
                if r.trace == trace && !out.iter().any(|o| o.span == r.span) {
                    out.push(*r);
                }
            }
        }
        out.sort_by_key(|r| (r.start_us, r.span));
        out
    }

    /// The slowest root spans, up to `per_class` per op class
    /// (clamped to the reservoir depth), slowest first — plus every
    /// retained sub-span of those roots' traces, so one reply carries
    /// the full stage breakdown. Roots precede sub-spans.
    pub fn slowest(&self, per_class: usize) -> Vec<SpanRecord> {
        let s = lock(&self.spans);
        let mut roots: Vec<SpanRecord> = Vec::new();
        for class in &s.slow {
            let mut picks: Vec<&(u64, SpanRecord)> = class.iter().collect();
            picks.sort_by_key(|(sq, r)| (std::cmp::Reverse(r.dur_us), std::cmp::Reverse(*sq)));
            roots.extend(picks.into_iter().take(per_class.min(self.slow_n)).map(|(_, r)| *r));
        }
        roots.sort_by_key(|r| (std::cmp::Reverse(r.dur_us), r.span));
        let mut out = roots.clone();
        for r in s.ring.iter() {
            if roots.iter().any(|root| root.trace == r.trace)
                && !out.iter().any(|o| o.span == r.span)
            {
                out.push(*r);
            }
        }
        out
    }

    /// Spans currently held in the ring.
    pub fn len(&self) -> usize {
        lock(&self.spans).ring.len()
    }

    /// Whether the ring holds no spans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring records evicted so far (`dasd_spans_evicted_total`).
    pub fn evicted(&self) -> u64 {
        lock(&self.spans).evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_roundtrips_and_rejects_corruption() {
        let spans = vec![
            SpanRecord {
                trace: 0xABCD,
                span: 1,
                parent: 0,
                daemon: 2,
                stage: Stage::Dispatch,
                op: OpClass::Exec,
                note: NOTE_NONE,
                start_us: 17,
                dur_us: 1234,
            },
            SpanRecord {
                trace: 0xABCD,
                span: 2,
                parent: 1,
                daemon: 2,
                stage: Stage::PeerFetch,
                op: OpClass::Exec,
                note: NOTE_HEDGE,
                start_us: 20,
                dur_us: 900,
            },
        ];
        let blob = encode_spans(&spans);
        assert_eq!(blob.len(), 4 + 2 * SPAN_WIRE_LEN);
        assert_eq!(decode_spans(&blob).as_deref(), Some(&spans[..]));
        // Truncation, stage corruption, and count inflation all fail.
        assert_eq!(decode_spans(&blob[..blob.len() - 1]), None);
        let mut bad = blob.clone();
        bad[4 + 20] = 0xFF;
        assert_eq!(decode_spans(&bad), None);
        let mut grown = blob.clone();
        grown[0] = 3;
        assert_eq!(decode_spans(&grown), None);
    }

    #[test]
    fn ring_evicts_fifo_and_counts() {
        let store = SpanStore::with_bounds(1, 4, 2);
        for i in 0..6u64 {
            store.record(100 + i, 0, Stage::Decode, OpClass::Get, NOTE_NONE, i, 1);
        }
        assert_eq!(store.len(), 4);
        assert_eq!(store.evicted(), 2);
        assert!(store.dump_trace(100).is_empty(), "oldest must be gone");
        assert_eq!(store.dump_trace(105).len(), 1);
    }

    #[test]
    fn reservoir_keeps_slowest_roots_past_ring_eviction() {
        let store = SpanStore::with_bounds(1, 2, 2);
        store.record(1, 0, Stage::Dispatch, OpClass::Get, NOTE_NONE, 0, 9000);
        for i in 0..8u64 {
            store.record(10 + i, 0, Stage::Dispatch, OpClass::Get, NOTE_NONE, i, 10 + i);
        }
        // Trace 1 left the ring long ago but survives via the
        // reservoir — both in its own dump and in the slow log.
        assert_eq!(store.dump_trace(1).len(), 1);
        let slow = store.slowest(2);
        assert_eq!(slow[0].trace, 1);
        assert_eq!(slow[0].dur_us, 9000);
    }

    #[test]
    fn reserved_roots_parent_their_sub_spans() {
        let store = SpanStore::new(3);
        let root = store.reserve();
        let child = store.record(7, root, Stage::PeerFetch, OpClass::Exec, NOTE_NONE, 5, 10);
        store.record_reserved(root, 7, 0, Stage::Dispatch, OpClass::Exec, NOTE_NONE, 0, 100);
        assert_ne!(root, 0);
        assert_ne!(child, root);
        let dump = store.dump_trace(7);
        assert_eq!(dump.len(), 2);
        let c = dump.iter().find(|r| r.span == child).expect("child retained");
        assert_eq!(c.parent, root, "sub-span links to the reserved root");
        assert!(dump.iter().any(|r| r.span == root && r.stage == Stage::Dispatch));
    }

    #[test]
    fn untraced_records_are_dropped() {
        let store = SpanStore::new(0);
        assert_eq!(store.record(0, 0, Stage::Kernel, OpClass::Exec, NOTE_NONE, 0, 1), 0);
        assert!(store.is_empty());
    }

    #[test]
    fn hedge_sub_ids_are_distinct_and_stable() {
        let parent = 0xDEAD_BEEF_u64;
        let a = hedge_sub_id(parent, 0);
        let b = hedge_sub_id(parent, 1);
        assert_ne!(a, parent);
        assert_ne!(b, parent);
        assert_ne!(a, b);
        assert_ne!(a, 0);
        assert_eq!(a, hedge_sub_id(parent, 0), "derivation must be deterministic");
    }
}
