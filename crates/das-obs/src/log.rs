//! Leveled, targeted structured events.
//!
//! One global level gate (`DASD_LOG=error|warn|info|debug|trace|off`,
//! default `info`) and one global sink format: a compact
//! `[LEVEL target] msg key=value…` human line on stderr, or — with
//! `DASD_LOG_FORMAT=json` — one JSON object per line.

use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Event severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed; somebody should look.
    Error = 1,
    /// Degraded but proceeding (failover, retry exhaustion nearby).
    Warn = 2,
    /// Lifecycle landmarks (listening, shutdown, decisions).
    Info = 3,
    /// Per-request detail (dispatch, retries, fault injection).
    Debug = 4,
    /// Per-frame detail (trace ids, byte counts).
    Trace = 5,
}

impl Level {
    /// Parse a level name, case-insensitively.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static JSON: AtomicBool = AtomicBool::new(false);

/// Set the global maximum level; events above it are dropped.
pub fn set_level(l: Level) {
    MAX_LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Silence every event, including errors.
pub fn disable() {
    MAX_LEVEL.store(0, Ordering::Relaxed);
}

/// Would an event at `l` currently be emitted?
pub fn enabled(l: Level) -> bool {
    l as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Switch between the human sink (false) and JSON lines (true).
pub fn set_json(on: bool) {
    JSON.store(on, Ordering::Relaxed);
}

/// Configure level and format from `DASD_LOG` / `DASD_LOG_FORMAT`.
/// Unknown values are ignored; `DASD_LOG=off` silences everything.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("DASD_LOG") {
        if v.trim().eq_ignore_ascii_case("off") {
            disable();
        } else if let Some(l) = Level::parse(&v) {
            set_level(l);
        }
    }
    if let Ok(v) = std::env::var("DASD_LOG_FORMAT") {
        set_json(v.trim().eq_ignore_ascii_case("json"));
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn field_needs_quoting(v: &str) -> bool {
    v.is_empty() || v.contains(|c: char| c.is_whitespace() || c == '"' || c == '=')
}

/// Emit one structured event if `level` passes the global gate.
///
/// `target` names the subsystem (`dasd`, `das-net::client`, …);
/// `fields` are key/value context rendered after the message.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
    if !enabled(level) {
        return;
    }
    let stderr = std::io::stderr();
    let mut w = stderr.lock();
    // das-lint: allow(DA711) format-mode flag — both branches render the same already-local data, no publication edge needed
    if JSON.load(Ordering::Relaxed) {
        let mut line = format!(
            "{{\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            level.as_str().to_ascii_lowercase(),
            json_escape(target),
            json_escape(msg)
        );
        for (k, v) in fields {
            line.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
        }
        line.push('}');
        let _ = writeln!(w, "{line}");
    } else {
        let mut line = format!("[{:<5} {target}] {msg}", level.as_str());
        for (k, v) in fields {
            if field_needs_quoting(v) {
                line.push_str(&format!(" {k}={:?}", v));
            } else {
                line.push_str(&format!(" {k}={v}"));
            }
        }
        let _ = writeln!(w, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_gating() {
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
