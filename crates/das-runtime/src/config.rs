//! Cluster configuration: node counts and the calibrated cost model.
//!
//! The paper ran on Texas Tech's Hrothgar cluster (Xeon nodes, Lustre,
//! 2012-era gigabit-class interconnect for I/O traffic). We do not
//! reproduce absolute seconds — DESIGN.md documents the substitution —
//! but the *ratios* that drive the paper's figures are set by four
//! quantities this struct calibrates:
//!
//! * per-node network bandwidth and per-message latency (client I/O
//!   and dependence fetches pay this),
//! * per-node disk bandwidth (active storage pays this instead),
//! * per-element kernel cost (identical on storage and compute nodes —
//!   the paper configures equal node counts "so NAS, DAS and TS would
//!   have the same computation capability"),
//! * per-request service overhead on storage servers (the load NAS
//!   adds to servers that must feed their neighbors).

use das_sim::{LinkRate, SimDuration};

/// Full description of a simulated deployment.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of storage servers `D`.
    pub storage_nodes: u32,
    /// Number of compute nodes (clients). The paper's default ratio is
    /// 1:1 with storage nodes.
    pub compute_nodes: u32,
    /// Network link model per node NIC (shared by sends and receives —
    /// transfers occupy both endpoint NICs).
    pub nic: LinkRate,
    /// Sequential disk read path on each storage node.
    pub disk_read: LinkRate,
    /// Disk write path on each storage node.
    pub disk_write: LinkRate,
    /// Multiplier on kernel per-element cost: effective cost is
    /// `cost_per_element / compute_rate` nanoseconds.
    pub compute_rate: f64,
    /// CPU time a storage server spends servicing one remote strip
    /// request (request parsing, buffer management) — charged on the
    /// *serving* node's CPU, where it competes with offloaded kernels.
    pub serve_cpu_overhead: SimDuration,
    /// Fixed job-launch / metadata cost charged once per run.
    pub startup: SimDuration,
    /// Launch skew between neighboring nodes (alternating 0/skew in a
    /// ring): real clusters never start in lockstep, and schemes with
    /// synchronous cross-server dependence (NAS) are uniquely
    /// sensitive to it — a request to a desynchronized neighbor waits
    /// out that neighbor's current kernel slice, the interference the
    /// paper's Section IV-B.1 describes. DAS and TS only pay the skew
    /// once.
    pub start_skew: SimDuration,
    /// Strip size in bytes for files created by the experiment
    /// drivers (PVFS2's 64 KiB default).
    pub strip_size: usize,
    /// Concurrent kernel/service slots per storage-server CPU.
    pub server_cores: u32,
    /// Concurrent kernel slots per compute-node CPU.
    pub client_cores: u32,
    /// Record a full execution trace (op-level Gantt data) in each
    /// run's report. Off by default — traces cost memory on big runs.
    pub trace: bool,
    /// Per-storage-node compute speed multipliers (cycled if shorter
    /// than the node count; `None` = homogeneous). A 0.5 entry models
    /// a straggler at half speed — schemes whose servers depend on one
    /// another (NAS) are coupled to the slowest node, while DAS's
    /// independent per-server work and TS's client-side compute are
    /// not. Applied to *storage-node* kernel slices and request
    /// service only.
    pub server_speed: Option<Vec<f64>>,
    /// Concurrent transfers the core switch sustains at full rate
    /// (`None` = non-blocking fabric). Small values model the
    /// congested interconnects the paper's introduction describes:
    /// every network transfer additionally occupies one switch slot.
    pub switch_capacity: Option<u32>,
}

impl ClusterConfig {
    /// The calibrated configuration behind the figure reproductions:
    /// 12+12 nodes (the paper's first experiment), gigabit-class
    /// network, local-disk-class storage path.
    pub fn paper_default() -> Self {
        ClusterConfig {
            storage_nodes: 12,
            compute_nodes: 12,
            // ~GbE: 105 MiB/s effective payload rate, 50 µs per message.
            nic: LinkRate::new(SimDuration::from_micros(50), 105.0),
            // Local sequential reads ~2 GiB/s, writes ~1.2 GiB/s.
            disk_read: LinkRate::new(SimDuration::from_micros(100), 2048.0),
            disk_write: LinkRate::new(SimDuration::from_micros(100), 1228.0),
            compute_rate: 1.0,
            serve_cpu_overhead: SimDuration::from_micros(700),
            startup: SimDuration::from_millis(5),
            start_skew: SimDuration::from_millis(2),
            strip_size: 64 * 1024,
            server_cores: 1,
            client_cores: 1,
            trace: false,
            server_speed: None,
            switch_capacity: None,
        }
    }

    /// A tiny configuration for fast unit/integration tests: 4+4
    /// nodes and 2 KiB strips so small rasters still stripe across
    /// servers.
    pub fn small_test() -> Self {
        ClusterConfig {
            storage_nodes: 4,
            compute_nodes: 4,
            strip_size: 2 * 1024,
            ..Self::paper_default()
        }
    }

    /// Derive a configuration with `total` nodes split half storage,
    /// half compute (the paper's node-scaling experiments use 24, 36,
    /// 48 and 60 total nodes).
    pub fn with_total_nodes(&self, total: u32) -> Self {
        assert!(total >= 2, "need at least one storage and one compute node");
        ClusterConfig {
            storage_nodes: total / 2,
            compute_nodes: total - total / 2,
            ..self.clone()
        }
    }

    /// Effective compute duration for `elements` elements of a kernel
    /// with the given per-element cost (ns at unit rate).
    pub fn compute_time(&self, elements: u64, cost_per_element: f64) -> SimDuration {
        SimDuration::from_secs_f64(elements as f64 * cost_per_element * 1e-9 / self.compute_rate)
    }

    /// Speed multiplier of storage server `s` (1.0 when homogeneous).
    pub fn server_speed(&self, s: usize) -> f64 {
        match &self.server_speed {
            Some(v) if !v.is_empty() => v[s % v.len()],
            _ => 1.0,
        }
    }

    /// Compute duration on storage server `s`, including its speed
    /// factor.
    pub fn server_compute_time(
        &self,
        s: usize,
        elements: u64,
        cost_per_element: f64,
    ) -> SimDuration {
        let base = self.compute_time(elements, cost_per_element);
        SimDuration::from_secs_f64(base.as_secs_f64() / self.server_speed(s))
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_experiment_setup() {
        let cfg = ClusterConfig::paper_default();
        assert_eq!(cfg.storage_nodes, 12);
        assert_eq!(cfg.compute_nodes, 12);
        assert_eq!(cfg.strip_size, 64 * 1024);
    }

    #[test]
    fn with_total_nodes_splits_evenly() {
        let cfg = ClusterConfig::paper_default().with_total_nodes(36);
        assert_eq!(cfg.storage_nodes, 18);
        assert_eq!(cfg.compute_nodes, 18);
        let odd = ClusterConfig::paper_default().with_total_nodes(25);
        assert_eq!(odd.storage_nodes, 12);
        assert_eq!(odd.compute_nodes, 13);
    }

    #[test]
    fn compute_time_scales_with_rate() {
        let mut cfg = ClusterConfig::paper_default();
        let base = cfg.compute_time(1_000_000, 100.0);
        cfg.compute_rate = 2.0;
        let fast = cfg.compute_time(1_000_000, 100.0);
        assert_eq!(base.as_nanos(), 2 * fast.as_nanos());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn degenerate_totals_rejected() {
        let _ = ClusterConfig::paper_default().with_total_nodes(1);
    }
}
