//! Traditional Storage (TS): ship the data to the compute nodes.
//!
//! The baseline of the paper's evaluation. Rows are partitioned
//! contiguously over the compute nodes; each client reads its block
//! plus a dependence halo from the storage servers, runs the kernel,
//! and writes its block of the result back. Both directions cross the
//! client↔server network; nothing moves between servers.

use std::collections::BTreeMap;

use das_kernels::{Kernel, Raster};
use das_pfs::LayoutPolicy;
use das_sim::{OpKind, OpSpec, TransferClass};

use crate::assembly::StripAssembly;
use crate::config::ClusterConfig;
use crate::report::RunReport;
use crate::scheme::{stitch_output, Ctx, FileCtx, SchemeKind};

/// Rows assigned to client `c` of `clients` over `height` rows:
/// contiguous blocks, remainder spread over the first clients.
pub(crate) fn row_block(height: u64, clients: u32, c: u32) -> (u64, u64) {
    let clients = u64::from(clients);
    let c = u64::from(c);
    let base = height / clients;
    let extra = height % clients;
    let start = c * base + c.min(extra);
    let len = base + u64::from(c < extra);
    (start, (start + len).min(height))
}

/// Build the TS op DAG for one job into the shared context and return
/// the functionally computed output chunks.
pub(crate) fn build_ts(
    ctx: &mut Ctx,
    f: &FileCtx,
    cfg: &ClusterConfig,
    kernel: &dyn Kernel,
) -> Vec<(u64, Vec<f32>)> {
    let offsets = kernel.dependence_offsets(f.width);
    let halo_rows = offsets
        .iter()
        .map(|o| o.unsigned_abs().div_ceil(f.width.max(1)))
        .max()
        .unwrap_or(0);

    let meta = ctx.pfs.meta(f.file).expect("file exists").clone();
    let mut chunks = Vec::new();

    for c in 0..cfg.compute_nodes {
        let (r0, r1) = row_block(f.height, cfg.compute_nodes, c);
        if r0 >= r1 {
            continue;
        }
        let cidx = c as usize;

        // ------- input read: own rows plus halo -------
        let hr0 = r0.saturating_sub(halo_rows);
        let hr1 = (r1 + halo_rows).min(f.height);
        let read_off = hr0 * f.width * 4;
        let read_len = (hr1 - hr0) * f.width * 4;

        // Group the overlapped strips by their primary server.
        let mut per_server: BTreeMap<usize, (u64, u64)> = BTreeMap::new(); // bytes, msgs
        let mut assembly = StripAssembly::new(
            f.width,
            f.height,
            cfg.strip_size,
            format!("TS client {c}"),
        );
        for part in meta.spec.strips_for_range(read_off, read_len) {
            let server = meta.layout.primary(part.strip);
            let e = per_server.entry(server.index()).or_insert((0, 0));
            e.0 += part.len as u64;
            e.1 += 1;
            // Functionally the client receives the whole strips it
            // touched (a PFS returns sector-aligned data).
            let data = ctx
                .pfs
                .server(server)
                .expect("server exists")
                .read_strip(f.file, part.strip)
                .expect("primary strip present");
            assembly.insert(part.strip, data);
        }

        let mut read_done = Vec::new();
        for (&s, &(bytes, msgs)) in &per_server {
            let disk = ctx.sim.add_op(
                OpSpec::new(OpKind::DiskRead { node: ctx.server_node(s), bytes })
                    .duration(cfg.disk_read.transfer_time_msgs(bytes, msgs))
                    .uses(ctx.server_disk[s])
                    .after(ctx.server_start[s])
                    .after(ctx.client_start[cidx])
                    .tag("ts-read-disk"),
            );
            let xfer = ctx.sim.add_op(
                OpSpec::new(OpKind::NetTransfer {
                    src: ctx.server_node(s),
                    dst: ctx.client_node(cidx),
                    bytes,
                })
                .duration(cfg.nic.transfer_time_msgs(bytes, msgs))
                .uses(ctx.server_nic[s])
                .uses(ctx.client_nic[cidx])
                .uses_all(ctx.switch)
                .after(disk)
                .class(TransferClass::ClientServer)
                .tag("ts-read-net"),
            );
            read_done.push(xfer);
        }

        // ------- compute on the client -------
        let own_elems = (r1 - r0) * f.width;
        let compute = ctx.sim.add_op(
            OpSpec::new(OpKind::Compute { node: ctx.client_node(cidx), units: own_elems })
                .duration(ctx.compute_dur(cfg, kernel, own_elems))
                .uses(ctx.client_cpu[cidx])
                .after_all(read_done)
                .tag("ts-compute"),
        );

        // ------- result write-back: own rows only -------
        let write_off = r0 * f.width * 4;
        let write_len = own_elems * 4;
        let mut write_per_server: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        for part in meta.spec.strips_for_range(write_off, write_len) {
            let server = meta.layout.primary(part.strip);
            let e = write_per_server.entry(server.index()).or_insert((0, 0));
            e.0 += part.len as u64;
            e.1 += 1;
        }
        for (&s, &(bytes, msgs)) in &write_per_server {
            let xfer = ctx.sim.add_op(
                OpSpec::new(OpKind::NetTransfer {
                    src: ctx.client_node(cidx),
                    dst: ctx.server_node(s),
                    bytes,
                })
                .duration(cfg.nic.transfer_time_msgs(bytes, msgs))
                .uses(ctx.client_nic[cidx])
                .uses(ctx.server_nic[s])
                .uses_all(ctx.switch)
                .after(compute)
                .class(TransferClass::ClientServer)
                .tag("ts-write-net"),
            );
            ctx.sim.add_op(
                OpSpec::new(OpKind::DiskWrite { node: ctx.server_node(s), bytes })
                    .duration(cfg.disk_write.transfer_time_msgs(bytes, msgs))
                    .uses(ctx.server_disk[s])
                    .after(xfer)
                    .tag("ts-write-disk"),
            );
        }

        // ------- functional execution -------
        let start_elem = r0 * f.width;
        let mut out = vec![0.0f32; own_elems as usize];
        kernel.process_range(&assembly, start_elem, &mut out);
        chunks.push((start_elem, out));
    }
    chunks
}

pub(crate) fn run_ts(cfg: &ClusterConfig, kernel: &dyn Kernel, input: &Raster) -> RunReport {
    let (mut ctx, f) = Ctx::new(cfg, input, LayoutPolicy::RoundRobin);
    let chunks = build_ts(&mut ctx, &f, cfg, kernel);
    let output = stitch_output(f.width, f.height, chunks);
    let sim_report = ctx.sim.run().expect("TS DAG schedulable");
    RunReport::from_sim(
        SchemeKind::Ts,
        kernel.name(),
        input.byte_len(),
        cfg.storage_nodes,
        cfg.compute_nodes,
        &sim_report,
        output.fingerprint(),
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_kernels::{workload, GaussianFilter};

    #[test]
    fn row_blocks_partition() {
        for (h, c) in [(64u64, 4u32), (10, 3), (5, 8), (100, 7)] {
            let mut covered = 0;
            let mut prev_end = 0;
            for i in 0..c {
                let (a, b) = row_block(h, c, i);
                assert_eq!(a, prev_end);
                prev_end = b;
                covered += b - a;
            }
            assert_eq!(covered, h, "h={h} c={c}");
            assert_eq!(prev_end, h);
        }
    }

    #[test]
    fn ts_output_matches_reference() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(64, 96, 3);
        let report = run_ts(&cfg, &GaussianFilter, &input);
        let reference = GaussianFilter.apply(&input);
        assert_eq!(report.output_fingerprint, reference.fingerprint());
        // TS moves input + output across client links, no server↔server.
        assert_eq!(report.bytes.net_server_server, 0);
        assert!(report.bytes.net_client_server >= 2 * input.byte_len());
        assert!(report.exec_secs() > 0.0);
    }

    #[test]
    fn ts_with_more_clients_than_rows() {
        let mut cfg = ClusterConfig::small_test();
        cfg.compute_nodes = 16;
        let input = workload::fbm_dem(32, 8, 5); // 8 rows < 16 clients
        let report = run_ts(&cfg, &GaussianFilter, &input);
        let reference = GaussianFilter.apply(&input);
        assert_eq!(report.output_fingerprint, reference.fingerprint());
    }
}
