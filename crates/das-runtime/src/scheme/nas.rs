//! Normal Active Storage (NAS): offload onto round-robin data.
//!
//! What existing active-storage systems do (paper Section IV-A.1):
//! kernels run on the storage servers, each processing its local
//! strips — but under the default round-robin distribution the
//! dependence of almost every strip lives on *other* servers, so each
//! strip task pulls its neighbor strips across the network, and the
//! serving server burns CPU and NIC feeding those pulls while trying
//! to compute its own offloaded work. The paper's Fig. 10 observation
//! ("the performance of NAS is much lower than TS … each strip was
//! transferred multiple times") emerges here from the DAG: fetches are
//! per-task with no cross-task cache, and service slots compete with
//! kernel slices on the same CPU resource.

use std::collections::{BTreeMap, BTreeSet};

use das_kernels::{Kernel, Raster};
use das_pfs::{LayoutPolicy, ServerId, StripId};
use das_sim::{OpId, OpKind, OpSpec, TransferClass};

use crate::assembly::StripAssembly;
use crate::config::ClusterConfig;
use crate::report::RunReport;
use crate::scheme::{stitch_output, Ctx, FileCtx, SchemeKind};

/// Build the NAS op DAG for one job into the shared context and return
/// the functionally computed output chunks.
pub(crate) fn build_nas(
    ctx: &mut Ctx,
    f: &FileCtx,
    cfg: &ClusterConfig,
    kernel: &dyn Kernel,
) -> Vec<(u64, Vec<f32>)> {
    let offsets = kernel.dependence_offsets(f.width);
    let meta = ctx.pfs.meta(f.file).expect("file exists").clone();
    let mut chunks = Vec::new();

    // First-touch local disk reads per server (the server scans its
    // local file once; OS caching makes later touches free).
    let mut local_read_op: BTreeMap<(usize, u64), OpId> = BTreeMap::new();
    // Serve-side disk reads are also first-touch (page cache), but the
    // *network fetch* is per task — the naive service re-ships the
    // strip every time a task asks.
    let mut serve_read_op: BTreeMap<(usize, u64), OpId> = BTreeMap::new();

    for s in 0..cfg.storage_nodes as usize {
        let server = ServerId(s as u32);
        let my_strips = meta.layout.primary_strips(server, f.strip_count);
        if my_strips.is_empty() {
            continue;
        }

        // Functional view: everything this server will ever hold —
        // its primaries plus every strip its tasks fetch.
        let mut assembly = StripAssembly::new(
            f.width,
            f.height,
            cfg.strip_size,
            format!("NAS server {s}"),
        );
        let mut fetched: BTreeSet<u64> = BTreeSet::new();
        for &t in &my_strips {
            let data = ctx
                .pfs
                .server(server)
                .expect("server exists")
                .read_strip(f.file, t)
                .expect("primary strip present");
            assembly.insert(t, data);
        }

        // The AS helper process is a single sequential loop per server
        // (as in the PVFS2/Lustre prototypes the paper builds on): it
        // fetches the dependence of one strip, processes it, then
        // moves to the next. Fetches therefore do not prefetch ahead
        // of compute, and a fetch directed at a busy neighbor waits
        // for that neighbor's current kernel slice — the serialization
        // the paper identifies as NAS's downfall.
        let mut prev_compute: Option<OpId> = None;

        for &t in &my_strips {
            let t_idx = t.0;
            let strip_bytes = ctx.strip_bytes(f, t_idx);

            // Local read (first touch pays the disk).
            let local = *local_read_op.entry((s, t_idx)).or_insert_with(|| {
                ctx.sim.add_op(
                    OpSpec::new(OpKind::DiskRead { node: ctx.server_node(s), bytes: strip_bytes })
                        .duration(cfg.disk_read.transfer_time(strip_bytes))
                        .uses(ctx.server_disk[s])
                        .after(ctx.server_start[s])
                        .tag("nas-local-read"),
                )
            });

            // Per-task dependence fetches from the owning servers —
            // issued one at a time, as synchronous RPCs, which is what
            // a naive helper loop does.
            let mut ready = vec![local];
            let mut last_fetch: Option<OpId> = None;
            for u in ctx.dependent_strips(f, t_idx, &offsets) {
                let owner = meta.layout.primary(StripId(u));
                if owner == server {
                    // Also local — covered by that strip's own read op.
                    let ub = ctx.strip_bytes(f, u);
                    let dep_read = *local_read_op.entry((s, u)).or_insert_with(|| {
                        ctx.sim.add_op(
                            OpSpec::new(OpKind::DiskRead { node: ctx.server_node(s), bytes: ub })
                                .duration(cfg.disk_read.transfer_time(ub))
                                .uses(ctx.server_disk[s])
                                .after(ctx.server_start[s])
                                .tag("nas-local-read"),
                        )
                    });
                    ready.push(dep_read);
                    continue;
                }
                let o = owner.index();
                let ub = ctx.strip_bytes(f, u);
                let disk = *serve_read_op.entry((o, u)).or_insert_with(|| {
                    ctx.sim.add_op(
                        OpSpec::new(OpKind::DiskRead { node: ctx.server_node(o), bytes: ub })
                            .duration(cfg.disk_read.transfer_time(ub))
                            .uses(ctx.server_disk[o])
                            .after(ctx.server_start[o])
                            .tag("nas-serve-read"),
                    )
                });
                // Request service burns the *owner's* CPU, competing
                // with its own offloaded kernel work.
                let mut serve_spec =
                    OpSpec::new(OpKind::Compute { node: ctx.server_node(o), units: 0 })
                        .duration(cfg.serve_cpu_overhead)
                        .uses(ctx.server_cpu[o])
                        .after(disk)
                        .tag("nas-serve-cpu");
                if let Some(prev) = prev_compute {
                    // The request is only *issued* when the helper
                    // loop reaches this task…
                    serve_spec = serve_spec.after(prev);
                }
                if let Some(prev_fetch) = last_fetch {
                    // …and only after the previous synchronous fetch
                    // of this task returned.
                    serve_spec = serve_spec.after(prev_fetch);
                }
                let serve = ctx.sim.add_op(serve_spec);
                // The response send occupies the single service thread
                // of the owner (kernel TCP path), not just its NIC —
                // which is how serving neighbors "increases the load of
                // each active storage server" (paper Section IV-B.1).
                let xfer = ctx.sim.add_op(
                    OpSpec::new(OpKind::NetTransfer {
                        src: ctx.server_node(o),
                        dst: ctx.server_node(s),
                        bytes: ub,
                    })
                    .duration(cfg.nic.transfer_time(ub))
                    .uses(ctx.server_nic[o])
                    .uses(ctx.server_nic[s])
                    .uses_all(ctx.switch)
                    .uses(ctx.server_cpu[o])
                    .after(serve)
                    .class(TransferClass::ServerServer)
                    .tag("nas-fetch"),
                );
                ready.push(xfer);
                last_fetch = Some(xfer);

                if fetched.insert(u) {
                    let data = ctx
                        .pfs
                        .server(owner)
                        .expect("server exists")
                        .read_strip(f.file, StripId(u))
                        .expect("owner holds strip");
                    assembly.insert(StripId(u), data);
                }
            }

            // Offloaded kernel slice for this strip's elements; the
            // sequential helper loop also orders it after the previous
            // task's slice.
            let (e0, e1) = ctx.strip_elem_range(f, t_idx);
            if let Some(prev) = prev_compute {
                ready.push(prev);
            }
            let compute = ctx.sim.add_op(
                OpSpec::new(OpKind::Compute { node: ctx.server_node(s), units: e1 - e0 })
                    .duration(cfg.server_compute_time(s, e1 - e0, kernel.cost_per_element()))
                    .uses(ctx.server_cpu[s])
                    .after_all(ready)
                    .tag("nas-compute"),
            );
            prev_compute = Some(compute);

            // Results stay on local storage (the active-storage output
            // path).
            ctx.sim.add_op(
                OpSpec::new(OpKind::DiskWrite { node: ctx.server_node(s), bytes: strip_bytes })
                    .duration(cfg.disk_write.transfer_time(strip_bytes))
                    .uses(ctx.server_disk[s])
                    .after(compute)
                    .tag("nas-write"),
            );
        }

        // Functional execution of every local strip task.
        for &t in &my_strips {
            let (e0, e1) = ctx.strip_elem_range(f, t.0);
            let mut out = vec![0.0f32; (e1 - e0) as usize];
            kernel.process_range(&assembly, e0, &mut out);
            chunks.push((e0, out));
        }
    }
    chunks
}

pub(crate) fn run_nas(cfg: &ClusterConfig, kernel: &dyn Kernel, input: &Raster) -> RunReport {
    let (mut ctx, f) = Ctx::new(cfg, input, LayoutPolicy::RoundRobin);
    let chunks = build_nas(&mut ctx, &f, cfg, kernel);
    let output = stitch_output(f.width, f.height, chunks);
    let sim_report = ctx.sim.run().expect("NAS DAG schedulable");
    RunReport::from_sim(
        SchemeKind::Nas,
        kernel.name(),
        input.byte_len(),
        cfg.storage_nodes,
        cfg.compute_nodes,
        &sim_report,
        output.fingerprint(),
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_kernels::{workload, FlowRouting, GaussianFilter};

    #[test]
    fn nas_output_matches_reference() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(64, 96, 11);
        let report = run_nas(&cfg, &FlowRouting, &input);
        let reference = FlowRouting.apply(&input);
        assert_eq!(report.output_fingerprint, reference.fingerprint());
    }

    #[test]
    fn nas_pays_server_to_server_dependence_traffic() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(64, 96, 11);
        let report = run_nas(&cfg, &GaussianFilter, &input);
        // Round-robin + 8-neighbor: neighbor strips are always remote.
        assert!(report.bytes.net_server_server > 0);
        // But nothing flows to clients.
        assert_eq!(report.bytes.net_client_server, 0);
        // Strips are re-fetched per task: amplification over the file
        // size is the paper's "transferred multiple times".
        assert!(report.bytes.net_server_server > input.byte_len());
    }

    #[test]
    fn nas_matches_predictor_byte_count() {
        // The measured fetch traffic must equal what the DAS bandwidth
        // predictor forecasts for this layout — prediction and
        // execution are two views of one model.
        use das_core::StripingParams;
        use das_pfs::Layout;
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(64, 96, 11);
        let report = run_nas(&cfg, &GaussianFilter, &input);
        let params = StripingParams {
            element_size: 4,
            strip_size: cfg.strip_size as u64,
            layout: Layout::new(LayoutPolicy::RoundRobin, cfg.storage_nodes),
        };
        let offsets = GaussianFilter.dependence_offsets(input.width());
        let predicted = params.predict_nas_fetches(&offsets, input.byte_len());
        assert_eq!(report.bytes.net_server_server, predicted.bytes);
    }
}
