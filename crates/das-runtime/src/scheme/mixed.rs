//! Mixed workloads: several jobs sharing one cluster — an extension
//! beyond the paper's one-job-at-a-time evaluation.
//!
//! Production clusters run analysis jobs concurrently, and the schemes
//! interact through shared resources: a TS job saturates the
//! client↔server network, a NAS job saturates server NICs and CPUs,
//! while a DAS job consumes almost no network at all. [`run_mixed`]
//! composes any set of (scheme, kernel, input) jobs into **one**
//! simulation over shared nodes, measuring each job's completion time
//! and the joint makespan — quantifying the *externality* of each
//! scheme: how much room it leaves for the jobs next to it.

use das_kernels::{Kernel, Raster};
use das_pfs::LayoutPolicy;
use das_sim::{ByteCounters, OpKind, OpSpec, SimDuration, SimTime};

use crate::config::ClusterConfig;
use crate::scheme::das::{build_das_offload, das_decision, planned_policy};
use crate::scheme::nas::build_nas;
use crate::scheme::ts::build_ts;
use crate::scheme::{stitch_output, Ctx, SchemeKind};

/// One job of a mixed workload.
pub struct JobSpec<'a> {
    /// Scheme serving this job.
    pub scheme: SchemeKind,
    /// The analysis kernel.
    pub kernel: &'a dyn Kernel,
    /// The job's input raster.
    pub input: &'a Raster,
}

/// Per-job result within a mixed run.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The scheme that served the job.
    pub scheme: SchemeKind,
    /// Kernel name.
    pub kernel: String,
    /// Completion time of the job's last operation (from cluster
    /// start, shared with the co-running jobs).
    pub completion: SimDuration,
    /// Bit-exact fingerprint of the job's output raster.
    pub output_fingerprint: u64,
    /// For DAS jobs: whether the decision engine offloaded.
    pub offloaded: Option<bool>,
}

/// The result of a mixed multi-job run.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// Per-job results, in submission order.
    pub jobs: Vec<JobResult>,
    /// Completion of the whole batch.
    pub makespan: SimDuration,
    /// Aggregate data movement across all jobs.
    pub bytes: ByteCounters,
}

/// Run several jobs concurrently on one simulated cluster.
///
/// Every job's operations enter a single DAG over shared per-node
/// resources; jobs interleave wherever the scheduler finds capacity
/// (there is no inter-job dependency). DAS jobs go through the usual
/// planning + decision workflow and fall back to TS service when the
/// offload is rejected.
///
/// # Panics
/// Panics if `jobs` is empty.
pub fn run_mixed(cfg: &ClusterConfig, jobs: &[JobSpec<'_>]) -> MixedReport {
    assert!(!jobs.is_empty(), "mixed run needs at least one job");
    // Per-job completion is read from the trace, so force tracing on.
    let mut traced_cfg = cfg.clone();
    traced_cfg.trace = true;
    let cfg = &traced_cfg;

    let mut ctx = Ctx::new_cluster(cfg);
    let mut job_meta = Vec::with_capacity(jobs.len());

    for (idx, job) in jobs.iter().enumerate() {
        let name = format!("job{idx}");
        let mark = ctx.sim.mark();
        let (chunks, f, offloaded) = match job.scheme {
            SchemeKind::Ts => {
                let f = ctx.ingest(cfg, &name, job.input, LayoutPolicy::RoundRobin);
                (build_ts(&mut ctx, &f, cfg, job.kernel), f, None)
            }
            SchemeKind::Nas => {
                let f = ctx.ingest(cfg, &name, job.input, LayoutPolicy::RoundRobin);
                (build_nas(&mut ctx, &f, cfg, job.kernel), f, None)
            }
            SchemeKind::Das => {
                let policy = planned_policy(cfg, job.kernel, job.input);
                let f = ctx.ingest(cfg, &name, job.input, policy);
                let decision = das_decision(&ctx, &f, cfg, job.kernel);
                if decision.is_offload() {
                    (build_das_offload(&mut ctx, &f, cfg, job.kernel), f, Some(true))
                } else {
                    // Dynamic fallback: serve as normal I/O.
                    (build_ts(&mut ctx, &f, cfg, job.kernel), f, Some(false))
                }
            }
        };
        let output = stitch_output(f.width, f.height, chunks);

        // Completion barrier over everything this job added.
        let ids = ctx.sim.ops_since(mark);
        let barrier = ctx
            .sim
            .add_op(OpSpec::new(OpKind::Barrier).after_all(ids).tag("job-end"));
        job_meta.push((job.scheme, job.kernel.name(), output.fingerprint(), offloaded, barrier));
    }

    let sim_report = ctx.sim.run().expect("mixed DAG schedulable");
    let trace = sim_report.trace.as_ref().expect("tracing enabled");

    let jobs_out = job_meta
        .into_iter()
        .map(|(scheme, kernel, fingerprint, offloaded, barrier)| {
            let end = trace
                .entries()
                .iter()
                .find(|e| e.op == barrier)
                .expect("job barrier executed")
                .finish;
            JobResult {
                scheme,
                kernel: kernel.to_string(),
                completion: end.since(SimTime::ZERO),
                output_fingerprint: fingerprint,
                offloaded,
            }
        })
        .collect();

    MixedReport {
        jobs: jobs_out,
        makespan: sim_report.makespan,
        bytes: sim_report.bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::run_scheme;
    use das_kernels::{workload, FlowRouting, GaussianFilter};

    #[test]
    fn mixed_outputs_match_references() {
        let cfg = ClusterConfig::small_test();
        let a = workload::fbm_dem(64, 96, 1);
        let b = workload::fbm_dem(128, 64, 2);
        let report = run_mixed(
            &cfg,
            &[
                JobSpec { scheme: SchemeKind::Das, kernel: &FlowRouting, input: &a },
                JobSpec { scheme: SchemeKind::Ts, kernel: &GaussianFilter, input: &b },
            ],
        );
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(
            report.jobs[0].output_fingerprint,
            FlowRouting.apply(&a).fingerprint()
        );
        assert_eq!(
            report.jobs[1].output_fingerprint,
            GaussianFilter.apply(&b).fingerprint()
        );
        assert_eq!(report.jobs[0].offloaded, Some(true));
        assert_eq!(report.jobs[1].offloaded, None);
        // Makespan covers both jobs.
        for j in &report.jobs {
            assert!(j.completion <= report.makespan);
        }
    }

    #[test]
    fn contention_slows_corunning_jobs() {
        // Two identical TS jobs sharing the cluster must each finish
        // no earlier than one running alone.
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(128, 256, 3);
        let solo = run_scheme(&cfg, SchemeKind::Ts, &GaussianFilter, &input);
        let duo = run_mixed(
            &cfg,
            &[
                JobSpec { scheme: SchemeKind::Ts, kernel: &GaussianFilter, input: &input },
                JobSpec { scheme: SchemeKind::Ts, kernel: &GaussianFilter, input: &input },
            ],
        );
        for j in &duo.jobs {
            assert!(
                j.completion >= solo.exec_time,
                "co-running job finished faster ({} vs solo {})",
                j.completion,
                solo.exec_time
            );
        }
        assert!(duo.makespan > solo.exec_time);
    }

    #[test]
    fn das_leaves_more_room_for_a_corunner() {
        // The externality claim: a TS job co-running with a DAS job
        // finishes sooner than co-running with another TS job, because
        // DAS stays off the network and off the client CPUs. Needs the
        // calibrated geometry (64 KiB strips) — at toy strip sizes DAS's
        // per-strip disk latencies dominate and the effect inverts.
        let mut cfg = ClusterConfig::paper_default();
        cfg.storage_nodes = 4;
        cfg.compute_nodes = 4;
        let mine = workload::fbm_dem(2048, 512, 4); // 4 MiB each
        let theirs = workload::fbm_dem(2048, 512, 5);
        let with_das = run_mixed(
            &cfg,
            &[
                JobSpec { scheme: SchemeKind::Ts, kernel: &GaussianFilter, input: &mine },
                JobSpec { scheme: SchemeKind::Das, kernel: &FlowRouting, input: &theirs },
            ],
        );
        let with_ts = run_mixed(
            &cfg,
            &[
                JobSpec { scheme: SchemeKind::Ts, kernel: &GaussianFilter, input: &mine },
                JobSpec { scheme: SchemeKind::Ts, kernel: &FlowRouting, input: &theirs },
            ],
        );
        assert!(
            with_das.jobs[0].completion < with_ts.jobs[0].completion,
            "TS job next to DAS ({}) should beat TS job next to TS ({})",
            with_das.jobs[0].completion,
            with_ts.jobs[0].completion
        );
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn empty_mixed_rejected() {
        let cfg = ClusterConfig::small_test();
        let _ = run_mixed(&cfg, &[]);
    }
}
