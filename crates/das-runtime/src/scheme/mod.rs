//! The three evaluation schemes (paper Section IV-A.1).
//!
//! Each executor builds two things in lockstep from the same strip-
//! level plan:
//!
//! 1. a [`das_sim`] operation DAG (disk reads, network transfers,
//!    kernel compute slices, request-service slots) over per-node
//!    resources, whose scheduled makespan is the scheme's execution
//!    time; and
//! 2. the actual kernel execution over [`StripAssembly`]s containing
//!    exactly the strips the DAG moved to each node, so the outputs
//!    can be compared bit-for-bit and missing data panics.
//!
//! The cluster state (`Ctx`) is shared infrastructure and the file
//! state (`FileCtx`) is per-job, so several jobs can be composed
//! into one simulation — see [`run_mixed`] for co-running workloads.
//!
//! [`StripAssembly`]: crate::assembly::StripAssembly

mod das;
mod mixed;
mod nas;
mod ts;

use std::collections::BTreeSet;

use das_kernels::{Kernel, Raster};
use das_pfs::{FileId, LayoutPolicy, PfsCluster, StripId, StripeSpec};
use das_sim::{OpId, OpKind, OpSpec, ResourceId, SimDuration, Simulator};

use crate::config::ClusterConfig;
use crate::report::RunReport;

pub(crate) use das::run_das;
pub use das::{run_das_forced_offload, run_das_with_policy};
pub use mixed::{run_mixed, JobResult, JobSpec, MixedReport};
pub(crate) use nas::run_nas;
pub(crate) use ts::run_ts;

/// Which evaluation scheme to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Traditional Storage: kernels on compute nodes, data over the
    /// network.
    Ts,
    /// Normal Active Storage: kernels on storage nodes over
    /// round-robin data, dependence fetched from neighbors.
    Nas,
    /// Dynamic Active Storage: predictor-driven offload over the
    /// improved distribution.
    Das,
}

impl SchemeKind {
    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Ts => "TS",
            SchemeKind::Nas => "NAS",
            SchemeKind::Das => "DAS",
        }
    }
}

/// What the DAS decision engine did for this run.
#[derive(Debug, Clone)]
pub struct DasOutcome {
    /// Whether the request was served as active storage.
    pub offloaded: bool,
    /// The layout the data was placed in.
    pub layout: LayoutPolicy,
    /// Predicted server↔server bytes on that layout (should be 0 when
    /// the plan is satisfied).
    pub predicted_server_bytes: u64,
}

/// Execute one (scheme, kernel, dataset) cell and report timing, data
/// movement and the output fingerprint.
///
/// The input raster is ingested into a fresh simulated parallel file
/// system (round-robin for TS/NAS; the planner's layout for DAS —
/// the paper's scenario where DAS arranged the data at write time).
/// Ingestion itself is not timed: all three schemes start from data
/// already resident on the storage servers, as in the paper's testbed.
pub fn run_scheme(
    cfg: &ClusterConfig,
    kind: SchemeKind,
    kernel: &dyn Kernel,
    input: &Raster,
) -> RunReport {
    match kind {
        SchemeKind::Ts => run_ts(cfg, kernel, input),
        SchemeKind::Nas => run_nas(cfg, kernel, input),
        SchemeKind::Das => run_das(cfg, kernel, input),
    }
}

/// Shared cluster state for one simulation: the file system, the
/// simulator and its per-node resources. Files are ingested per job
/// (see [`FileCtx`]).
pub(crate) struct Ctx {
    pub pfs: PfsCluster,
    pub sim: Simulator,
    pub server_cpu: Vec<ResourceId>,
    pub server_nic: Vec<ResourceId>,
    pub server_disk: Vec<ResourceId>,
    pub client_cpu: Vec<ResourceId>,
    pub client_nic: Vec<ResourceId>,
    /// Core-switch slot pool when the fabric is capacity-limited.
    pub switch: Option<ResourceId>,
    /// Per-server launch gate: startup plus the node's start skew.
    pub server_start: Vec<OpId>,
    /// Per-client launch gate.
    pub client_start: Vec<OpId>,
    /// Elements per strip (uniform across files; `strip_size / 4`).
    pub strip_elems: u64,
}

/// One ingested file's geometry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FileCtx {
    pub file: FileId,
    pub width: u64,
    pub height: u64,
    pub elements: u64,
    pub strip_count: u64,
}

impl Ctx {
    /// Set up the cluster (resources, launch gates) with no files yet.
    pub fn new_cluster(cfg: &ClusterConfig) -> Ctx {
        let pfs = PfsCluster::new(cfg.storage_nodes);
        let mut sim = Simulator::new();
        if cfg.trace {
            sim.enable_trace();
        }
        let d = cfg.storage_nodes as usize;
        let c = cfg.compute_nodes as usize;
        let server_cpu = (0..d)
            .map(|i| sim.add_resource(format!("server{i}.cpu"), cfg.server_cores))
            .collect();
        let server_nic = (0..d)
            .map(|i| sim.add_resource(format!("server{i}.nic"), 1))
            .collect();
        let server_disk = (0..d)
            .map(|i| sim.add_resource(format!("server{i}.disk"), 1))
            .collect();
        let client_cpu = (0..c)
            .map(|i| sim.add_resource(format!("client{i}.cpu"), cfg.client_cores))
            .collect();
        let client_nic = (0..c)
            .map(|i| sim.add_resource(format!("client{i}.nic"), 1))
            .collect();
        let switch = cfg.switch_capacity.map(|cap| sim.add_resource("switch", cap));

        let startup = sim.add_op(
            OpSpec::new(OpKind::Barrier)
                .duration(cfg.startup)
                .tag("startup"),
        );
        // Alternating launch skew around the server ring / client list
        // (nodes never start in lockstep on a real cluster).
        let skew_gate = |sim: &mut Simulator, i: usize| {
            let dur = if i % 2 == 1 { cfg.start_skew } else { SimDuration::ZERO };
            sim.add_op(
                OpSpec::new(OpKind::Barrier)
                    .duration(dur)
                    .after(startup)
                    .tag("launch-skew"),
            )
        };
        let server_start: Vec<OpId> = (0..d).map(|i| skew_gate(&mut sim, i)).collect();
        let client_start: Vec<OpId> = (0..c).map(|i| skew_gate(&mut sim, i)).collect();

        Ctx {
            pfs,
            sim,
            server_cpu,
            server_nic,
            server_disk,
            client_cpu,
            client_nic,
            switch,
            server_start,
            client_start,
            strip_elems: (cfg.strip_size / 4) as u64,
        }
    }

    /// Ingest a raster as a striped file under `policy` (untimed — the
    /// data pre-exists, as on the paper's testbed).
    pub fn ingest(
        &mut self,
        cfg: &ClusterConfig,
        name: &str,
        input: &Raster,
        policy: LayoutPolicy,
    ) -> FileCtx {
        let bytes = input.to_bytes();
        let file = self
            .pfs
            .create(name, &bytes, StripeSpec::new(cfg.strip_size), policy)
            .expect("ingest input file");
        FileCtx {
            file,
            width: input.width(),
            height: input.height(),
            elements: input.cells(),
            strip_count: self.pfs.meta(file).expect("file exists").strip_count(),
        }
    }

    /// Single-file convenience used by the per-scheme entry points.
    pub fn new(cfg: &ClusterConfig, input: &Raster, policy: LayoutPolicy) -> (Ctx, FileCtx) {
        let mut ctx = Ctx::new_cluster(cfg);
        let f = ctx.ingest(cfg, "input", input, policy);
        (ctx, f)
    }

    /// Node id of server `s` in `OpKind` endpoint terms.
    pub fn server_node(&self, s: usize) -> u32 {
        s as u32
    }

    /// Node id of client `c` in `OpKind` endpoint terms (clients are
    /// numbered after servers).
    pub fn client_node(&self, c: usize) -> u32 {
        self.server_cpu.len() as u32 + c as u32
    }

    /// The element range `[start, end)` covered by strip `t` of `f`.
    pub fn strip_elem_range(&self, f: &FileCtx, t: u64) -> (u64, u64) {
        let start = t * self.strip_elems;
        (start, (start + self.strip_elems).min(f.elements))
    }

    /// The strips (other than `t` itself) containing any dependence of
    /// any element of strip `t`, under the given offsets (shared with
    /// the predictor and the networked executor).
    pub fn dependent_strips(&self, f: &FileCtx, t: u64, offsets: &[i64]) -> BTreeSet<u64> {
        das_core::dependent_strips(t, offsets, self.strip_elems, f.elements)
    }

    /// Byte length of strip `t` of `f` (the final strip may be partial).
    pub fn strip_bytes(&self, f: &FileCtx, t: u64) -> u64 {
        let meta = self.pfs.meta(f.file).expect("file exists");
        meta.spec.strip_len(StripId(t), meta.len) as u64
    }

    /// Compute-op duration for `elements` of `kernel`.
    pub fn compute_dur(&self, cfg: &ClusterConfig, kernel: &dyn Kernel, elements: u64) -> SimDuration {
        cfg.compute_time(elements, kernel.cost_per_element())
    }
}

/// Assemble per-element outputs into a raster: `chunks` are
/// `(start_element, values)` pairs that must jointly cover the raster.
pub(crate) fn stitch_output(width: u64, height: u64, chunks: Vec<(u64, Vec<f32>)>) -> Raster {
    let cells = usize::try_from(width * height).expect("cell count fits usize");
    let mut out = Raster::filled(width, height, 0.0);
    let mut covered = vec![false; cells];
    for (start, values) in chunks {
        for (k, v) in values.into_iter().enumerate() {
            let i = start as usize + k;
            assert!(!covered[i], "output element {i} produced twice");
            covered[i] = true;
            out.set_linear(i as u64, v);
        }
    }
    if let Some(gap) = covered.iter().position(|&c| !c) {
        panic!("output element {gap} never produced");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_kernels::workload;

    #[test]
    fn ctx_geometry() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(64, 64, 1);
        let (ctx, f) = Ctx::new(&cfg, &input, LayoutPolicy::RoundRobin);
        assert_eq!(f.elements, 64 * 64);
        assert_eq!(ctx.strip_elems, 512);
        assert_eq!(f.strip_count, 8);
        assert_eq!(ctx.strip_elem_range(&f, 7), (7 * 512, 4096));
        assert_eq!(ctx.strip_bytes(&f, 7), 2048);
        assert_eq!(ctx.server_node(2), 2);
        assert_eq!(ctx.client_node(0), 4);
    }

    #[test]
    fn dependent_strips_of_stencil() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(64, 64, 1);
        let (ctx, f) = Ctx::new(&cfg, &input, LayoutPolicy::RoundRobin);
        // 8-neighbor on width 64: reaches ±65 elements; strip holds 512.
        let offsets = [-65i64, -64, -63, -1, 1, 63, 64, 65];
        assert_eq!(ctx.dependent_strips(&f, 0, &offsets), BTreeSet::from([1]));
        assert_eq!(ctx.dependent_strips(&f, 3, &offsets), BTreeSet::from([2, 4]));
        assert_eq!(ctx.dependent_strips(&f, 7, &offsets), BTreeSet::from([6]));
    }

    #[test]
    fn multiple_files_coexist() {
        let cfg = ClusterConfig::small_test();
        let a = workload::fbm_dem(64, 64, 1);
        let b = workload::fbm_dem(32, 32, 2);
        let mut ctx = Ctx::new_cluster(&cfg);
        let fa = ctx.ingest(&cfg, "a", &a, LayoutPolicy::RoundRobin);
        let fb = ctx.ingest(&cfg, "b", &b, LayoutPolicy::GroupedReplicated { group: 2 });
        assert_ne!(fa.file, fb.file);
        assert_eq!(ctx.pfs.file_bytes(fa.file).unwrap(), a.to_bytes());
        assert_eq!(ctx.pfs.file_bytes(fb.file).unwrap(), b.to_bytes());
        ctx.pfs.verify(fa.file).unwrap();
        ctx.pfs.verify(fb.file).unwrap();
    }

    #[test]
    fn stitch_covers_and_orders() {
        let out = stitch_output(
            4,
            2,
            vec![(4, vec![4.0, 5.0, 6.0, 7.0]), (0, vec![0.0, 1.0, 2.0, 3.0])],
        );
        for i in 0..8 {
            assert_eq!(out.get_linear(i), i as f32);
        }
    }

    #[test]
    #[should_panic(expected = "never produced")]
    fn stitch_detects_gaps() {
        let _ = stitch_output(4, 2, vec![(0, vec![0.0; 4])]);
    }
}
