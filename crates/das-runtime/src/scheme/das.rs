//! Dynamic Active Storage (DAS): the paper's scheme.
//!
//! The pipeline follows the paper's Fig. 3 end to end:
//!
//! 1. the **planner** (paper Section III-D) chooses the improved data
//!    distribution for the kernel's dependence pattern; the data is
//!    ingested in that layout (the paper's scenario where DAS arranged
//!    the data when it was written — flow-accumulation consuming
//!    flow-routing's output is the motivating example);
//! 2. the **decision engine** (Section III-C, deployed with the
//!    latency-aware `decide_timed` extension) predicts the cost of
//!    offloading on the actual layout and accepts or rejects;
//! 3. on acceptance, every storage server processes its local strips —
//!    every dependence resolves to a primary or replica strip on its
//!    own disk, so the only server↔server traffic left is replica
//!    maintenance of the *output* boundary strips;
//! 4. on rejection (a pattern the layout cannot satisfy and whose
//!    fetch cost exceeds normal I/O), the request falls back to
//!    traditional service — the "dynamic" in Dynamic Active Storage.
//!
//! The functional path is strict: when the decision engine accepts, a
//! dependence that is not locally available panics (via
//! [`StripAssembly`]) instead of being silently fetched, except where
//! the predictor already counted it remote — so the executed data
//! movement can never be better than the prediction claims.

use std::collections::{BTreeMap, BTreeSet};

use das_core::{decide_timed, Decision, DecisionInput, KernelFeatures, LinkCost, OffsetExpr,
    PlanOptions};
use das_kernels::{Kernel, Raster};
use das_pfs::{LayoutPolicy, ServerId, StripId};
use das_sim::{OpId, OpKind, OpSpec, TransferClass};

use crate::assembly::StripAssembly;
use crate::config::ClusterConfig;
use crate::report::RunReport;
use crate::scheme::{stitch_output, ts::run_ts, Ctx, DasOutcome, FileCtx, SchemeKind};

pub(crate) fn run_das(cfg: &ClusterConfig, kernel: &dyn Kernel, input: &Raster) -> RunReport {
    run_das_inner(cfg, kernel, input, None, false)
}

/// Run the DAS executor with a *forced* data layout instead of the
/// planner's choice — the knob behind the group-size ablation bench.
/// The decision workflow and the honest fetch accounting for
/// dependences the layout fails to cover still apply.
pub fn run_das_with_policy(
    cfg: &ClusterConfig,
    kernel: &dyn Kernel,
    input: &Raster,
    policy: LayoutPolicy,
) -> RunReport {
    run_das_inner(cfg, kernel, input, Some(policy), false)
}

/// Run the DAS executor with a forced layout **and** a forced offload,
/// bypassing the decision engine — the ground-truth probe used by the
/// decision-quality ablation (measuring what an offload *would have*
/// cost when the engine declined it).
pub fn run_das_forced_offload(
    cfg: &ClusterConfig,
    kernel: &dyn Kernel,
    input: &Raster,
    policy: LayoutPolicy,
) -> RunReport {
    run_das_inner(cfg, kernel, input, Some(policy), true)
}

/// The planner's layout choice for `kernel` over `input` under `cfg`.
pub(crate) fn planned_policy(
    cfg: &ClusterConfig,
    kernel: &dyn Kernel,
    input: &Raster,
) -> LayoutPolicy {
    das_core::plan_distribution(
        &kernel.dependence_offsets(input.width()),
        4,
        cfg.strip_size as u64,
        cfg.storage_nodes,
        input.byte_len(),
        PlanOptions::default(),
    )
    .policy
}

/// Run the Fig. 3 decision (timed variant) for `kernel` over the
/// already-ingested file `f`.
pub(crate) fn das_decision(
    ctx: &Ctx,
    f: &FileCtx,
    cfg: &ClusterConfig,
    kernel: &dyn Kernel,
) -> Decision {
    let offsets = kernel.dependence_offsets(f.width);
    let features = KernelFeatures {
        name: kernel.name().to_string(),
        dependence: offsets.iter().map(|&o| OffsetExpr::Const(o)).collect(),
    };
    let dist = ctx.pfs.distribution_info(f.file).expect("file exists");
    let link = LinkCost {
        bytes_per_sec: cfg.nic.bytes_per_sec,
        per_request_secs: (cfg.serve_cpu_overhead + cfg.nic.latency * 2).as_secs_f64(),
        per_message_secs: cfg.nic.latency.as_secs_f64(),
        compute_nodes: cfg.compute_nodes,
    };
    decide_timed(
        &DecisionInput {
            features: &features,
            dist,
            element_size: 4,
            img_width: f.width,
            output_bytes: dist.file_len,
            successive: false,
            plan_opts: PlanOptions::default(),
        },
        &link,
    )
}

/// Build the offloaded-DAS op DAG for one job into the shared context
/// and return the functionally computed output chunks. Dependences the
/// layout fails to cover are fetched NAS-style (and were counted by the
/// predictor); with a satisfied plan no network ops are created except
/// output-replica maintenance.
pub(crate) fn build_das_offload(
    ctx: &mut Ctx,
    f: &FileCtx,
    cfg: &ClusterConfig,
    kernel: &dyn Kernel,
) -> Vec<(u64, Vec<f32>)> {
    let offsets = kernel.dependence_offsets(f.width);
    let meta = ctx.pfs.meta(f.file).expect("file exists").clone();
    let mut chunks = Vec::new();
    let mut local_read_op: BTreeMap<(usize, u64), OpId> = BTreeMap::new();
    let mut serve_read_op: BTreeMap<(usize, u64), OpId> = BTreeMap::new();

    for s in 0..cfg.storage_nodes as usize {
        let server = ServerId(s as u32);
        let my_strips = meta.layout.primary_strips(server, f.strip_count);
        if my_strips.is_empty() {
            continue;
        }

        // Functional view: primaries plus replicas this server holds.
        let mut assembly = StripAssembly::new(
            f.width,
            f.height,
            cfg.strip_size,
            format!("DAS server {s}"),
        );
        for t in ctx.pfs.server(server).expect("server exists").all_strips(f.file) {
            let data = ctx
                .pfs
                .server(server)
                .expect("server exists")
                .read_strip(f.file, t)
                .expect("held strip readable");
            assembly.insert(t, data);
        }
        let mut fetched: BTreeSet<u64> = BTreeSet::new();

        for &t in &my_strips {
            let t_idx = t.0;
            let strip_bytes = ctx.strip_bytes(f, t_idx);

            // Local reads: the strip itself plus every locally held
            // dependence (first touch pays the disk).
            let mut ready = Vec::new();
            let mut needed = ctx.dependent_strips(f, t_idx, &offsets);
            needed.insert(t_idx);
            for u in needed {
                if meta.layout.holds(server, StripId(u)) {
                    let ub = ctx.strip_bytes(f, u);
                    let read = *local_read_op.entry((s, u)).or_insert_with(|| {
                        ctx.sim.add_op(
                            OpSpec::new(OpKind::DiskRead { node: ctx.server_node(s), bytes: ub })
                                .duration(cfg.disk_read.transfer_time(ub))
                                .uses(ctx.server_disk[s])
                                .after(ctx.server_start[s])
                                .tag("das-local-read"),
                        )
                    });
                    ready.push(read);
                } else {
                    // The planner could not cover this dependence (the
                    // predictor counted it): fetch it NAS-style so the
                    // simulated cost honestly includes the shortfall.
                    let owner = meta.layout.primary(StripId(u));
                    let o = owner.index();
                    let ub = ctx.strip_bytes(f, u);
                    let disk = *serve_read_op.entry((o, u)).or_insert_with(|| {
                        ctx.sim.add_op(
                            OpSpec::new(OpKind::DiskRead { node: ctx.server_node(o), bytes: ub })
                                .duration(cfg.disk_read.transfer_time(ub))
                                .uses(ctx.server_disk[o])
                                .after(ctx.server_start[o])
                                .tag("das-serve-read"),
                        )
                    });
                    let serve = ctx.sim.add_op(
                        OpSpec::new(OpKind::Compute { node: ctx.server_node(o), units: 0 })
                            .duration(cfg.serve_cpu_overhead)
                            .uses(ctx.server_cpu[o])
                            .after(disk)
                            .tag("das-serve-cpu"),
                    );
                    let xfer = ctx.sim.add_op(
                        OpSpec::new(OpKind::NetTransfer {
                            src: ctx.server_node(o),
                            dst: ctx.server_node(s),
                            bytes: ub,
                        })
                        .duration(cfg.nic.transfer_time(ub))
                        .uses(ctx.server_nic[o])
                        .uses(ctx.server_nic[s])
                        .uses_all(ctx.switch)
                        .after(serve)
                        .class(TransferClass::ServerServer)
                        .tag("das-fetch"),
                    );
                    ready.push(xfer);
                    if fetched.insert(u) {
                        let data = ctx
                            .pfs
                            .server(owner)
                            .expect("server exists")
                            .read_strip(f.file, StripId(u))
                            .expect("owner holds strip");
                        assembly.insert(StripId(u), data);
                    }
                }
            }

            // Offloaded kernel slice.
            let (e0, e1) = ctx.strip_elem_range(f, t_idx);
            let compute = ctx.sim.add_op(
                OpSpec::new(OpKind::Compute { node: ctx.server_node(s), units: e1 - e0 })
                    .duration(cfg.server_compute_time(s, e1 - e0, kernel.cost_per_element()))
                    .uses(ctx.server_cpu[s])
                    .after_all(ready)
                    .tag("das-compute"),
            );

            // Result written locally; the output file inherits the
            // replicated layout, so boundary strips also ship one copy
            // to the ring neighbor (the only server↔server traffic DAS
            // retains, bounded by 2/r of the output).
            ctx.sim.add_op(
                OpSpec::new(OpKind::DiskWrite { node: ctx.server_node(s), bytes: strip_bytes })
                    .duration(cfg.disk_write.transfer_time(strip_bytes))
                    .uses(ctx.server_disk[s])
                    .after(compute)
                    .tag("das-write"),
            );
            for rep in meta.layout.replicas(t) {
                let h = rep.index();
                let xfer = ctx.sim.add_op(
                    OpSpec::new(OpKind::NetTransfer {
                        src: ctx.server_node(s),
                        dst: ctx.server_node(h),
                        bytes: strip_bytes,
                    })
                    .duration(cfg.nic.transfer_time(strip_bytes))
                    .uses(ctx.server_nic[s])
                    .uses(ctx.server_nic[h])
                    .uses_all(ctx.switch)
                    .after(compute)
                    .class(TransferClass::ServerServer)
                    .tag("das-replica"),
                );
                ctx.sim.add_op(
                    OpSpec::new(OpKind::DiskWrite { node: ctx.server_node(h), bytes: strip_bytes })
                        .duration(cfg.disk_write.transfer_time(strip_bytes))
                        .uses(ctx.server_disk[h])
                        .after(xfer)
                        .tag("das-replica-write"),
                );
            }
        }

        // Functional execution.
        for &t in &my_strips {
            let (e0, e1) = ctx.strip_elem_range(f, t.0);
            let mut out = vec![0.0f32; (e1 - e0) as usize];
            kernel.process_range(&assembly, e0, &mut out);
            chunks.push((e0, out));
        }
    }
    chunks
}

fn run_das_inner(
    cfg: &ClusterConfig,
    kernel: &dyn Kernel,
    input: &Raster,
    forced_policy: Option<LayoutPolicy>,
    force_offload: bool,
) -> RunReport {
    // Step 1: plan the improved distribution for this pattern (or
    // honor the caller's forced layout).
    let policy = forced_policy.unwrap_or_else(|| planned_policy(cfg, kernel, input));
    let (mut ctx, f) = Ctx::new(cfg, input, policy);

    // Step 2: the Fig. 3 decision on the actual layout.
    let decision = das_decision(&ctx, &f, cfg, kernel);
    let predicted_server_bytes = decision.predicted().nas.bytes;

    if !decision.is_offload() && !force_offload {
        // Step 4: dynamic fallback to traditional service.
        let mut report = run_ts(cfg, kernel, input);
        report.scheme = SchemeKind::Das;
        report.das = Some(DasOutcome {
            offloaded: false,
            layout: policy,
            predicted_server_bytes,
        });
        return report;
    }

    // Step 3: offloaded execution over the local (replicated) data.
    let chunks = build_das_offload(&mut ctx, &f, cfg, kernel);
    let output = stitch_output(f.width, f.height, chunks);
    let sim_report = ctx.sim.run().expect("DAS DAG schedulable");
    RunReport::from_sim(
        SchemeKind::Das,
        kernel.name(),
        input.byte_len(),
        cfg.storage_nodes,
        cfg.compute_nodes,
        &sim_report,
        output.fingerprint(),
        Some(DasOutcome {
            offloaded: true,
            layout: policy,
            predicted_server_bytes,
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_kernels::{workload, FlowRouting, GaussianFilter};

    #[test]
    fn das_output_matches_reference() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(64, 96, 21);
        let report = run_das(&cfg, &FlowRouting, &input);
        let reference = FlowRouting.apply(&input);
        assert_eq!(report.output_fingerprint, reference.fingerprint());
        let das = report.das.as_ref().expect("DAS outcome recorded");
        assert!(das.offloaded);
        assert!(matches!(das.layout, LayoutPolicy::GroupedReplicated { .. }));
    }

    #[test]
    fn das_input_dependence_traffic_is_replica_maintenance_only() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(64, 96, 21);
        let report = run_das(&cfg, &GaussianFilter, &input);
        let das = report.das.as_ref().unwrap();
        assert_eq!(das.predicted_server_bytes, 0, "plan satisfied");
        // The only server↔server bytes are output replica copies,
        // bounded by the 2/r capacity overhead of the layout.
        let r = match das.layout {
            LayoutPolicy::GroupedReplicated { group } => group,
            other => panic!("unexpected layout {other:?}"),
        };
        let bound = input.byte_len() * 2 / r + 2 * cfg.strip_size as u64;
        assert!(
            report.bytes.net_server_server <= bound,
            "replica traffic {} exceeds 2/r bound {bound}",
            report.bytes.net_server_server
        );
        assert_eq!(report.bytes.net_client_server, 0);
    }

    #[test]
    fn das_beats_nas_and_ts_on_stencils() {
        // At this miniature scale TS and NAS are close (the full
        // paper-shape ordering is asserted at calibrated scale in the
        // integration tests); DAS must already beat both.
        use crate::scheme::{run_nas, run_ts};
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(256, 512, 5);
        let das = run_das(&cfg, &FlowRouting, &input);
        let nas = run_nas(&cfg, &FlowRouting, &input);
        let ts = run_ts(&cfg, &FlowRouting, &input);
        assert!(das.exec_time < ts.exec_time, "DAS {} vs TS {}", das.exec_time, ts.exec_time);
        assert!(das.exec_time < nas.exec_time, "DAS {} vs NAS {}", das.exec_time, nas.exec_time);
        // All three computed the same thing.
        assert_eq!(das.output_fingerprint, nas.output_fingerprint);
        assert_eq!(das.output_fingerprint, ts.output_fingerprint);
    }
}
