//! Per-run results: what the figure harnesses print and the tests
//! assert on.

use das_sim::{ByteCounters, SimDuration, SimReport};

use crate::scheme::{DasOutcome, SchemeKind};

/// One fault-tolerance action taken while serving a request. The
/// in-process simulator never degrades (its "network" cannot fail),
/// but the networked executors in `das-net` record every rung of the
/// paper's fallback ladder they descend — replica failover first,
/// then DAS → NAS → normal I/O — so a report always says *how* its
/// output was produced, not just that it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradeEvent {
    /// A server stopped answering (connect/retry budget exhausted);
    /// subsequent requests route around it.
    ServerUnavailable {
        /// The unreachable server's id.
        server: u32,
    },
    /// A strip read failed over from its primary to a replica holder.
    ReplicaFailover {
        /// File id.
        file: u32,
        /// Strip index.
        strip: u64,
        /// The primary that could not serve the strip.
        primary: u32,
        /// The replica that did.
        replica: u32,
    },
    /// A strip write could not reach every holder; the copies that
    /// were stored keep the data readable, at reduced redundancy.
    DegradedWrite {
        /// File id.
        file: u32,
        /// Strip index.
        strip: u64,
        /// Holders that could not be written.
        missed: u32,
    },
    /// The DAS offload (decide + redistribute + execute) failed for
    /// transport reasons; the executor fell back to an unconditional
    /// offload on the current layout (the NAS rung).
    DegradedToNas {
        /// Why the DAS rung failed.
        reason: String,
    },
    /// Offloading was abandoned entirely; the request was served as
    /// normal I/O (the paper's `FallbackToNormalIo` / TS rung).
    DegradedToTs {
        /// Why the offload rungs failed.
        reason: String,
    },
}

impl DegradeEvent {
    /// Short machine-friendly tag for logs and summaries.
    pub fn tag(&self) -> &'static str {
        match self {
            DegradeEvent::ServerUnavailable { .. } => "server-unavailable",
            DegradeEvent::ReplicaFailover { .. } => "replica-failover",
            DegradeEvent::DegradedWrite { .. } => "degraded-write",
            DegradeEvent::DegradedToNas { .. } => "degraded-to-nas",
            DegradeEvent::DegradedToTs { .. } => "degraded-to-ts",
        }
    }
}

/// The outcome of one (scheme, kernel, dataset) execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Which scheme ran.
    pub scheme: SchemeKind,
    /// Kernel name.
    pub kernel: String,
    /// Input size in bytes.
    pub data_bytes: u64,
    /// Storage servers used.
    pub storage_nodes: u32,
    /// Compute nodes used.
    pub compute_nodes: u32,
    /// Simulated execution time (the DAG makespan).
    pub exec_time: SimDuration,
    /// Lower bound ignoring contention.
    pub critical_path: SimDuration,
    /// Operations simulated.
    pub op_count: usize,
    /// Data movement by category.
    pub bytes: ByteCounters,
    /// Bit-exact fingerprint of the produced output raster.
    pub output_fingerprint: u64,
    /// The DAS decision record (None for TS/NAS).
    pub das: Option<DasOutcome>,
    /// Full execution trace when [`crate::ClusterConfig::trace`] was
    /// set (render with [`das_sim::TraceLog::render_gantt`]).
    pub trace: Option<das_sim::TraceLog>,
    /// Fault-tolerance actions taken while producing this result
    /// (always empty for simulator runs; populated by the networked
    /// executors).
    pub degradations: Vec<DegradeEvent>,
}

impl RunReport {
    #[allow(clippy::too_many_arguments)] // constructor mirrors the report fields
    pub(crate) fn from_sim(
        scheme: SchemeKind,
        kernel: &str,
        data_bytes: u64,
        storage_nodes: u32,
        compute_nodes: u32,
        sim: &SimReport,
        output_fingerprint: u64,
        das: Option<DasOutcome>,
    ) -> Self {
        RunReport {
            scheme,
            kernel: kernel.to_string(),
            data_bytes,
            storage_nodes,
            compute_nodes,
            exec_time: sim.makespan,
            critical_path: sim.critical_path,
            op_count: sim.op_count,
            bytes: sim.bytes,
            output_fingerprint,
            das,
            trace: sim.trace.clone(),
            degradations: Vec::new(),
        }
    }

    /// Execution time in seconds.
    pub fn exec_secs(&self) -> f64 {
        self.exec_time.as_secs_f64()
    }

    /// Sustained useful bandwidth in MiB/s: application bytes (input
    /// read once + output written once) over the execution time —
    /// the quantity behind the paper's Fig. 14.
    pub fn sustained_bandwidth_mib(&self) -> f64 {
        let useful = 2.0 * self.data_bytes as f64; // input + same-size output
        useful / self.exec_time.as_secs_f64().max(1e-12) / (1024.0 * 1024.0)
    }

    /// One formatted table row (scheme, time, bandwidth, movement).
    pub fn row(&self) -> String {
        format!(
            "{:<4} {:<18} {:>8.1} MiB {:>10.4}s {:>9.1} MiB/s  c/s {:>8.1} MiB  s/s {:>8.1} MiB",
            self.scheme.name(),
            self.kernel,
            self.data_bytes as f64 / (1024.0 * 1024.0),
            self.exec_secs(),
            self.sustained_bandwidth_mib(),
            self.bytes.net_client_server as f64 / (1024.0 * 1024.0),
            self.bytes.net_server_server as f64 / (1024.0 * 1024.0),
        )
    }

    /// Serializable snapshot (JSON for the bench harness artifacts).
    ///
    /// Hand-rolled: the kernel name is the only string field, and
    /// kernel names are ASCII identifiers, so escaping `"` and `\` is
    /// sufficient. Floats use Rust's shortest-roundtrip `Display`.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    c if (c as u32) < 0x20 => {
                        format!("\\u{:04x}", c as u32).chars().collect()
                    }
                    c => vec![c],
                })
                .collect()
        }
        let offloaded = match self.das.as_ref().map(|d| d.offloaded) {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"scheme\":\"{}\",\"kernel\":\"{}\",\"data_bytes\":{},",
                "\"storage_nodes\":{},\"compute_nodes\":{},\"exec_secs\":{},",
                "\"critical_path_secs\":{},\"op_count\":{},\"disk_read\":{},",
                "\"disk_write\":{},\"net_client_server\":{},\"net_server_server\":{},",
                "\"sustained_bandwidth_mib\":{},\"output_fingerprint\":{},",
                "\"offloaded\":{}}}"
            ),
            esc(self.scheme.name()),
            esc(&self.kernel),
            self.data_bytes,
            self.storage_nodes,
            self.compute_nodes,
            self.exec_secs(),
            self.critical_path.as_secs_f64(),
            self.op_count,
            self.bytes.disk_read,
            self.bytes.disk_write,
            self.bytes.net_client_server,
            self.bytes.net_server_server,
            self.sustained_bandwidth_mib(),
            self.output_fingerprint,
            offloaded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            scheme: SchemeKind::Das,
            kernel: "flow-routing".into(),
            data_bytes: 24 << 20,
            storage_nodes: 12,
            compute_nodes: 12,
            exec_time: SimDuration::from_millis(50),
            critical_path: SimDuration::from_millis(40),
            op_count: 123,
            bytes: ByteCounters::default(),
            output_fingerprint: 0xDEAD,
            das: None,
            trace: None,
            degradations: Vec::new(),
        }
    }

    #[test]
    fn bandwidth_is_two_s_over_t() {
        let r = sample();
        let expected = 2.0 * 24.0 / 0.05; // MiB over seconds
        assert!((r.sustained_bandwidth_mib() - expected).abs() < 1e-6);
    }

    #[test]
    fn json_contains_scheme_and_kernel() {
        let j = sample().to_json();
        assert!(j.contains("\"scheme\":\"DAS\""));
        assert!(j.contains("flow-routing"));
        assert!(j.contains("\"exec_secs\":0.05"));
    }

    #[test]
    fn row_is_single_line() {
        assert_eq!(sample().row().lines().count(), 1);
    }
}
