//! Strip assemblies: the data a node actually has, as an
//! [`ElemSource`] for kernels.
//!
//! Each scheme delivers a different set of strips to each processing
//! node (TS: a row block plus halo; NAS: local strips plus fetched
//! neighbors; DAS: local strips plus replicas). A [`StripAssembly`]
//! holds exactly that set and serves element reads out of it. If a
//! kernel touches an in-bounds element whose strip the executor never
//! delivered, the assembly **panics with a precise diagnostic** — the
//! mechanism by which the integration tests prove each scheme's data
//! movement is sufficient, not just that its output looks right.

use std::collections::HashMap;

use bytes::Bytes;
use das_kernels::ElemSource;
use das_pfs::StripId;

/// Element size this workspace's rasters use (f32).
const ELEMENT_SIZE: u64 = 4;

/// A partial view of a striped raster file: geometry plus whichever
/// strips one node holds.
#[derive(Debug, Clone)]
pub struct StripAssembly {
    width: u64,
    height: u64,
    strip_size: u64,
    strips: HashMap<u64, Bytes>,
    /// Where the assembly lives, for panic diagnostics
    /// (e.g. `"DAS server 3"`).
    label: String,
}

impl StripAssembly {
    /// Create an empty assembly for a `width × height` f32 raster
    /// striped at `strip_size` bytes.
    ///
    /// # Panics
    /// Panics unless the strip size is a positive multiple of the
    /// element size.
    pub fn new(width: u64, height: u64, strip_size: usize, label: impl Into<String>) -> Self {
        let strip_size = strip_size as u64;
        assert!(
            strip_size > 0 && strip_size.is_multiple_of(ELEMENT_SIZE),
            "strip size must be a positive multiple of {ELEMENT_SIZE}"
        );
        StripAssembly {
            width,
            height,
            strip_size,
            strips: HashMap::new(),
            label: label.into(),
        }
    }

    /// Add a strip's bytes. Re-adding the same strip is allowed (a
    /// replica has identical content by the PFS invariant).
    pub fn insert(&mut self, strip: StripId, data: Bytes) {
        self.strips.insert(strip.0, data);
    }

    /// Whether the assembly holds `strip`.
    pub fn contains(&self, strip: StripId) -> bool {
        self.strips.contains_key(&strip.0)
    }

    /// Number of strips held.
    pub fn strip_count(&self) -> usize {
        self.strips.len()
    }

    /// Read the element with linear index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range or its strip is missing.
    pub fn get_linear(&self, i: u64) -> f32 {
        assert!(
            i < self.width * self.height,
            "{}: element {i} outside {}x{} raster",
            self.label,
            self.width,
            self.height
        );
        let byte = i * ELEMENT_SIZE;
        let strip = byte / self.strip_size;
        let data = self.strips.get(&strip).unwrap_or_else(|| {
            panic!(
                "{}: element {i} needs strip {strip}, which this node does not hold — \
                 the executing scheme's data movement is insufficient",
                self.label
            )
        });
        let off = (byte % self.strip_size) as usize;
        f32::from_le_bytes([data[off], data[off + 1], data[off + 2], data[off + 3]])
    }
}

impl ElemSource for StripAssembly {
    fn width(&self) -> u64 {
        self.width
    }

    fn height(&self) -> u64 {
        self.height
    }

    fn get(&self, row: i64, col: i64) -> Option<f32> {
        if row < 0 || col < 0 || row as u64 >= self.height || col as u64 >= self.width {
            return None;
        }
        Some(self.get_linear(row as u64 * self.width + col as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_kernels::Raster;

    fn assembled(width: u64, height: u64, strip_size: usize) -> (Raster, StripAssembly) {
        let raster = Raster::from_fn(width, height, |r, c| (r * width + c) as f32);
        let bytes = raster.to_bytes();
        let mut asm = StripAssembly::new(width, height, strip_size, "test");
        for (i, chunk) in bytes.chunks(strip_size).enumerate() {
            asm.insert(StripId(i as u64), Bytes::copy_from_slice(chunk));
        }
        (raster, asm)
    }

    #[test]
    fn full_assembly_reads_every_element() {
        let (raster, asm) = assembled(7, 5, 12); // 12 B = 3 elements/strip
        for row in 0..5 {
            for col in 0..7 {
                assert_eq!(asm.get(row as i64, col as i64), Some(raster.get(row, col)));
            }
        }
        assert_eq!(asm.get(-1, 0), None);
        assert_eq!(asm.get(0, 7), None);
        assert_eq!(asm.get(5, 0), None);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn missing_strip_panics_with_diagnostic() {
        let (_, asm) = assembled(8, 4, 16);
        // Remove strip 2 by rebuilding without it.
        let mut partial = StripAssembly::new(8, 4, 16, "DAS server 3");
        for s in [0u64, 1, 3, 4, 5, 6, 7] {
            if asm.contains(StripId(s)) {
                // copy over via get_linear path is awkward; reinsert raw
                partial.insert(StripId(s), Bytes::from(vec![0u8; 16]));
            }
        }
        let _ = asm; // original untouched
        let _ = partial.get(1, 1); // element 9 → byte 36 → strip 2 → panic
    }

    #[test]
    fn partial_assembly_serves_what_it_holds() {
        let (raster, _) = assembled(8, 4, 16);
        let bytes = raster.to_bytes();
        let mut asm = StripAssembly::new(8, 4, 16, "client 0");
        asm.insert(StripId(0), Bytes::copy_from_slice(&bytes[0..16]));
        assert_eq!(asm.get(0, 0), Some(0.0));
        assert_eq!(asm.get(0, 3), Some(3.0));
        assert_eq!(asm.strip_count(), 1);
        assert!(asm.contains(StripId(0)));
        assert!(!asm.contains(StripId(1)));
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn unaligned_strip_size_rejected() {
        let _ = StripAssembly::new(4, 4, 10, "bad");
    }
}
