//! # das-runtime — the cluster model and the three evaluation schemes
//!
//! The DAS paper's evaluation (Section IV) compares three schemes on a
//! Lustre cluster:
//!
//! * **TS** (Traditional Storage) — servers do normal I/O; the
//!   analysis kernels run on the compute nodes, so the input crosses
//!   the network to the clients and the results cross back;
//! * **NAS** (Normal Active Storage) — kernels run on the storage
//!   servers over round-robin-striped data; every dependence on a
//!   strip the server does not hold is fetched from the neighbor
//!   server holding it, *and* each server must serve its neighbors'
//!   fetches while computing;
//! * **DAS** (Dynamic Active Storage) — the paper's contribution:
//!   offload decisions are made by the bandwidth predictor and the
//!   data is distributed by the improved layout, so every dependence
//!   is locally satisfiable.
//!
//! This crate executes all three **functionally and temporally**:
//!
//! * *functionally* — kernels really run, over exactly the strips the
//!   scheme's data paths deliver to each node
//!   ([`assembly::StripAssembly`] panics if an executor's data-
//!   movement logic forgot a strip some element needs), and the three
//!   schemes' outputs are compared bit-for-bit;
//! * *temporally* — every disk access, network transfer, kernel slice
//!   and request-service slot becomes an operation in a
//!   [`das_sim::Simulator`] DAG over per-node CPU/NIC/disk resources,
//!   so queueing and the compute-vs-serve interference the paper
//!   blames for NAS's loss emerge from scheduling rather than being
//!   assumed.
//!
//! [`run_scheme`] executes one (scheme, kernel, dataset) cell;
//! [`sweep`] has the multi-cell drivers behind the figure
//! reproductions.
//!
//! ```
//! use das_runtime::{run_scheme, ClusterConfig, SchemeKind};
//! use das_kernels::{workload, GaussianFilter};
//!
//! let cfg = ClusterConfig::small_test(); // 4+4 nodes, small strips
//! let dem = workload::fbm_dem(64, 96, 7);
//! let ts = run_scheme(&cfg, SchemeKind::Ts, &GaussianFilter, &dem);
//! let das = run_scheme(&cfg, SchemeKind::Das, &GaussianFilter, &dem);
//! assert_eq!(ts.output_fingerprint, das.output_fingerprint);
//! // Input dependence traffic is eliminated; what remains between
//! // servers is bounded replica maintenance of the output (2/r).
//! assert_eq!(das.das.as_ref().unwrap().predicted_server_bytes, 0);
//! assert!(das.bytes.net_server_server < dem.byte_len());
//! ```


pub mod assembly;
pub mod config;
pub mod pipeline;
pub mod report;
pub mod scheme;
pub mod sweep;

pub use assembly::StripAssembly;
pub use config::ClusterConfig;
pub use pipeline::{
    redistribution_cost, run_pipeline, run_pipeline_observed, PipelineReport, RedistributionCost,
};
pub use report::{DegradeEvent, RunReport};
pub use scheme::{
    run_das_forced_offload, run_das_with_policy, run_mixed, run_scheme, DasOutcome, JobResult,
    JobSpec, MixedReport, SchemeKind,
};
pub use sweep::{node_sweep, size_sweep, SweepPoint};
