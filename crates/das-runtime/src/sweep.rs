//! Experiment drivers: the parameter sweeps behind the paper's
//! figures, parallelized over independent simulation runs with scoped
//! threads.

use crossbeam::thread;
use das_kernels::{kernel_by_name, workload, Raster};

use crate::config::ClusterConfig;
use crate::report::RunReport;
use crate::scheme::{run_scheme, SchemeKind};

/// One cell of a sweep: the configuration axis value and the resulting
/// report.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Axis value (data MiB for size sweeps, node count for node
    /// sweeps).
    pub axis: u64,
    /// The run's report.
    pub report: RunReport,
}

/// Generate the standard figure workload: a fractal DEM sized to
/// `mib` MiB at a fixed width of 2048 elements (8 KiB rows — the
/// scaled-down analogue of the paper's rasters; see DESIGN.md).
pub fn figure_workload(mib: u64, seed: u64) -> Raster {
    let width = 2048u64;
    let rows = (mib << 20) / (width * 4);
    workload::fbm_dem(width, rows, seed)
}

/// Run `scheme` × `kernel` at each data size (MiB), in parallel.
///
/// # Panics
/// Panics if `kernel` is not a registered kernel name.
pub fn size_sweep(
    cfg: &ClusterConfig,
    scheme: SchemeKind,
    kernel: &str,
    sizes_mib: &[u64],
    seed: u64,
) -> Vec<SweepPoint> {
    assert!(kernel_by_name(kernel).is_some(), "unknown kernel {kernel}");
    run_parallel(sizes_mib, |&mib| {
        let k = kernel_by_name(kernel).expect("validated above");
        let input = figure_workload(mib, seed);
        SweepPoint { axis: mib, report: run_scheme(cfg, scheme, k.as_ref(), &input) }
    })
}

/// Run `scheme` × `kernel` at a fixed data size over varying total
/// node counts (half storage, half compute), in parallel.
///
/// # Panics
/// Panics if `kernel` is not a registered kernel name.
pub fn node_sweep(
    cfg: &ClusterConfig,
    scheme: SchemeKind,
    kernel: &str,
    data_mib: u64,
    totals: &[u32],
    seed: u64,
) -> Vec<SweepPoint> {
    assert!(kernel_by_name(kernel).is_some(), "unknown kernel {kernel}");
    run_parallel(totals, |&total| {
        let k = kernel_by_name(kernel).expect("validated above");
        let cfg = cfg.with_total_nodes(total);
        let input = figure_workload(data_mib, seed);
        SweepPoint {
            axis: u64::from(total),
            report: run_scheme(&cfg, scheme, k.as_ref(), &input),
        }
    })
}

/// Map `f` over `items` with one scoped thread per item (simulation
/// runs are independent and CPU-bound), preserving order.
fn run_parallel<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .iter()
            .map(|item| scope.spawn(|_| f(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_workload_has_requested_size() {
        let r = figure_workload(1, 3);
        assert_eq!(r.byte_len(), 1 << 20);
        assert_eq!(r.width(), 2048);
        assert_eq!(r.height(), 128);
    }

    #[test]
    fn size_sweep_orders_and_labels_points() {
        let cfg = ClusterConfig::small_test();
        let points = size_sweep(&cfg, SchemeKind::Das, "gaussian-filter", &[1, 2], 7);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].axis, 1);
        assert_eq!(points[1].axis, 2);
        assert!(points[1].report.exec_secs() > points[0].report.exec_secs());
    }

    #[test]
    fn node_sweep_shrinks_execution_time() {
        let cfg = ClusterConfig::small_test();
        let points = node_sweep(&cfg, SchemeKind::Ts, "flow-routing", 2, &[4, 16], 7);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].report.exec_secs() < points[0].report.exec_secs(),
            "more nodes must be faster: {:?} vs {:?}",
            points[0].report.exec_secs(),
            points[1].report.exec_secs()
        );
    }

    #[test]
    #[should_panic(expected = "unknown kernel")]
    fn unknown_kernel_panics() {
        let cfg = ClusterConfig::small_test();
        let _ = size_sweep(&cfg, SchemeKind::Ts, "nope", &[1], 1);
    }
}
