//! Multi-stage pipelines and layout-reconfiguration costs.
//!
//! The paper motivates the improved distribution with *successive
//! operations*: "the flow-accumulation operation always follows the
//! flow-routing operation" (Section I), so one layout reconfiguration
//! is amortized over every stage that follows. This module makes that
//! argument quantitative:
//!
//! * [`redistribution_cost`] simulates the paper's "Reconfig Parallel
//!   File System" box (Fig. 3) — the strip movement and replica
//!   creation needed to switch layouts — under the same cluster cost
//!   model as the scheme executors;
//! * [`run_pipeline`] executes a chain of kernels (each consuming the
//!   previous stage's output) under one scheme, charging DAS the
//!   up-front redistribution when the data starts round-robin.

use das_core::PlanOptions;
use das_kernels::{Kernel, Raster};
use das_pfs::{Endpoint, LayoutPolicy, PfsCluster, StripeSpec};
use das_sim::{OpKind, OpSpec, SimDuration, Simulator, TransferClass};

use crate::config::ClusterConfig;
use crate::report::RunReport;
use crate::scheme::{run_das_with_policy, run_scheme, SchemeKind};

/// Cost of switching a file's layout: simulated time and bytes moved.
#[derive(Debug, Clone, Copy)]
pub struct RedistributionCost {
    /// Simulated wall time of the reconfiguration.
    pub time: SimDuration,
    /// Bytes that crossed the network between servers.
    pub net_bytes: u64,
}

/// Simulate redistributing a file of `input`'s size from `from` to
/// `to` under `cfg`'s cost model. Transfers between each (src, dst)
/// server pair are batched and pipelined across pairs, with the same
/// per-node NIC/disk resources the scheme executors use.
pub fn redistribution_cost(
    cfg: &ClusterConfig,
    input: &Raster,
    from: LayoutPolicy,
    to: LayoutPolicy,
) -> RedistributionCost {
    // Replay the real file system's redistribution traffic.
    let mut pfs = PfsCluster::new(cfg.storage_nodes);
    let file = pfs
        .create("redistribute", &input.to_bytes(), StripeSpec::new(cfg.strip_size), from)
        .expect("ingest");
    let traffic = pfs.redistribute(file, to).expect("redistribute");

    // Batch bytes per (src, dst) pair.
    use std::collections::BTreeMap;
    let mut pairs: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new(); // bytes, msgs
    let mut net_bytes = 0;
    for rec in traffic.records() {
        if let (Endpoint::Server(a), Endpoint::Server(b)) = (rec.from, rec.to) {
            if a != b {
                let e = pairs.entry((a.0, b.0)).or_insert((0, 0));
                e.0 += rec.bytes;
                e.1 += 1;
                net_bytes += rec.bytes;
            }
        }
    }

    let mut sim = Simulator::new();
    let nics: Vec<_> = (0..cfg.storage_nodes)
        .map(|i| sim.add_resource(format!("server{i}.nic"), 1))
        .collect();
    let disks: Vec<_> = (0..cfg.storage_nodes)
        .map(|i| sim.add_resource(format!("server{i}.disk"), 1))
        .collect();
    for (&(a, b), &(bytes, msgs)) in &pairs {
        let read = sim.add_op(
            OpSpec::new(OpKind::DiskRead { node: a, bytes })
                .duration(cfg.disk_read.transfer_time_msgs(bytes, msgs))
                .uses(disks[a as usize])
                .tag("redist-read"),
        );
        let xfer = sim.add_op(
            OpSpec::new(OpKind::NetTransfer { src: a, dst: b, bytes })
                .duration(cfg.nic.transfer_time_msgs(bytes, msgs))
                .uses(nics[a as usize])
                .uses(nics[b as usize])
                .after(read)
                .class(TransferClass::ServerServer)
                .tag("redist-net"),
        );
        sim.add_op(
            OpSpec::new(OpKind::DiskWrite { node: b, bytes })
                .duration(cfg.disk_write.transfer_time_msgs(bytes, msgs))
                .uses(disks[b as usize])
                .after(xfer)
                .tag("redist-write"),
        );
    }
    let report = sim.run().expect("redistribution DAG schedulable");
    RedistributionCost { time: report.makespan, net_bytes }
}

/// The result of a multi-stage pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The scheme used.
    pub scheme: SchemeKind,
    /// Up-front layout reconfiguration (DAS starting from round-robin;
    /// zero for TS/NAS and for pre-arranged DAS data).
    pub redistribution: Option<RedistributionCost>,
    /// Per-stage reports, in execution order.
    pub stages: Vec<RunReport>,
    /// Fingerprint of the final stage's output.
    pub final_fingerprint: u64,
}

impl PipelineReport {
    /// End-to-end simulated time: redistribution (if any) plus every
    /// stage.
    pub fn total_time(&self) -> SimDuration {
        let mut t = self
            .redistribution
            .map(|r| r.time)
            .unwrap_or(SimDuration::ZERO);
        for s in &self.stages {
            t += s.exec_time;
        }
        t
    }

    /// Total time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_time().as_secs_f64()
    }
}

/// Run `kernels` as a pipeline (stage *k+1* consumes stage *k*'s
/// output raster) under `scheme`.
///
/// For [`SchemeKind::Das`] the data is assumed to start in the
/// round-robin layout of a freshly written file: the run pays one
/// layout reconfiguration (planned from the first kernel's dependence
/// pattern) and every stage then executes over the improved layout —
/// exactly the paper's successive-operation scenario. TS and NAS have
/// no layout work.
///
/// # Panics
/// Panics if `kernels` is empty.
pub fn run_pipeline(
    cfg: &ClusterConfig,
    scheme: SchemeKind,
    kernels: &[&dyn Kernel],
    input: &Raster,
) -> PipelineReport {
    assert!(!kernels.is_empty(), "pipeline needs at least one stage");

    let mut redistribution = None;
    let mut policy = None;
    if scheme == SchemeKind::Das {
        let offsets = kernels[0].dependence_offsets(input.width());
        let plan = das_core::plan_distribution(
            &offsets,
            4,
            cfg.strip_size as u64,
            cfg.storage_nodes,
            input.byte_len(),
            PlanOptions::default(),
        );
        if plan.policy != LayoutPolicy::RoundRobin {
            redistribution =
                Some(redistribution_cost(cfg, input, LayoutPolicy::RoundRobin, plan.policy));
        }
        policy = Some(plan.policy);
    }

    let mut stages = Vec::with_capacity(kernels.len());
    let mut current = input.clone();
    for kernel in kernels {
        let report = match (scheme, policy) {
            (SchemeKind::Das, Some(p)) => run_das_with_policy(cfg, *kernel, &current, p),
            _ => run_scheme(cfg, scheme, *kernel, &current),
        };
        // The next stage consumes this stage's output.
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        current = das_kernels::apply_parallel(*kernel, &current, threads);
        debug_assert_eq!(current.fingerprint(), report.output_fingerprint);
        stages.push(report);
    }

    PipelineReport {
        scheme,
        redistribution,
        stages,
        final_fingerprint: current.fingerprint(),
    }
}

/// [`run_pipeline`], recording the run into a metrics registry:
/// stages and redistribution bytes as counters and per-stage
/// simulated time as a histogram, all labelled by scheme. The report
/// is unchanged — observation is strictly additive.
pub fn run_pipeline_observed(
    cfg: &ClusterConfig,
    scheme: SchemeKind,
    kernels: &[&dyn Kernel],
    input: &Raster,
    metrics: &das_obs::Registry,
) -> PipelineReport {
    let report = run_pipeline(cfg, scheme, kernels, input);
    let scheme_label = report.scheme.name();
    if let Some(r) = &report.redistribution {
        metrics
            .counter("das_pipeline_redistribution_bytes_total", &[("scheme", scheme_label)])
            .add(r.net_bytes);
    }
    for stage in &report.stages {
        metrics.counter("das_pipeline_stages_total", &[("scheme", scheme_label)]).inc();
        metrics
            .histogram("das_pipeline_stage_time_us", &[("scheme", scheme_label)])
            .observe((stage.exec_time.as_secs_f64() * 1e6) as u64);
    }
    das_obs::event(
        das_obs::Level::Debug,
        "das.runtime",
        "pipeline run",
        &[
            ("scheme", scheme_label.to_string()),
            ("stages", report.stages.len().to_string()),
            ("total_secs", format!("{:.6}", report.total_secs())),
        ],
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_kernels::{workload, FlowAccumulationStep, FlowRouting, GaussianFilter};

    #[test]
    fn redistribution_moves_replica_and_regroup_bytes() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(128, 256, 3);
        let cost = redistribution_cost(
            &cfg,
            &input,
            LayoutPolicy::RoundRobin,
            LayoutPolicy::GroupedReplicated { group: 4 },
        );
        assert!(cost.net_bytes > 0);
        assert!(cost.time > SimDuration::ZERO);
        // Identity redistribution is free.
        let noop = redistribution_cost(
            &cfg,
            &input,
            LayoutPolicy::RoundRobin,
            LayoutPolicy::RoundRobin,
        );
        assert_eq!(noop.net_bytes, 0);
        assert_eq!(noop.time, SimDuration::ZERO);
    }

    #[test]
    fn pipeline_outputs_match_composed_reference() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(256, 256, 5);
        let kernels: Vec<&dyn das_kernels::Kernel> = vec![&FlowRouting, &FlowAccumulationStep];
        let expected = FlowAccumulationStep.apply(&FlowRouting.apply(&input));

        for scheme in [SchemeKind::Ts, SchemeKind::Nas, SchemeKind::Das] {
            let report = run_pipeline(&cfg, scheme, &kernels, &input);
            assert_eq!(report.stages.len(), 2);
            assert_eq!(
                report.final_fingerprint,
                expected.fingerprint(),
                "{} pipeline output",
                scheme.name()
            );
        }
    }

    #[test]
    fn das_pipeline_pays_redistribution_once_and_amortizes() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(256, 512, 6);

        let one: Vec<&dyn das_kernels::Kernel> = vec![&GaussianFilter];
        let three: Vec<&dyn das_kernels::Kernel> =
            vec![&GaussianFilter, &GaussianFilter, &GaussianFilter];

        let das1 = run_pipeline(&cfg, SchemeKind::Das, &one, &input);
        let das3 = run_pipeline(&cfg, SchemeKind::Das, &three, &input);
        let r1 = das1.redistribution.expect("starts round-robin").time;
        let r3 = das3.redistribution.expect("starts round-robin").time;
        assert_eq!(r1.as_nanos(), r3.as_nanos(), "reconfiguration happens once");

        // Redistribution share of total shrinks as stages grow.
        let share1 = r1.as_secs_f64() / das1.total_secs();
        let share3 = r3.as_secs_f64() / das3.total_secs();
        assert!(share3 < share1);
    }

    #[test]
    fn ts_and_nas_pipelines_have_no_layout_work() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(128, 128, 2);
        let kernels: Vec<&dyn das_kernels::Kernel> = vec![&GaussianFilter];
        for scheme in [SchemeKind::Ts, SchemeKind::Nas] {
            let report = run_pipeline(&cfg, scheme, &kernels, &input);
            assert!(report.redistribution.is_none());
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_pipeline_rejected() {
        let cfg = ClusterConfig::small_test();
        let input = workload::fbm_dem(64, 64, 1);
        let _ = run_pipeline(&cfg, SchemeKind::Ts, &[], &input);
    }
}
