//! Property tests across the runtime: for arbitrary raster geometries,
//! strip sizes and cluster shapes, every scheme must compute the same
//! answer, the measured NAS dependence traffic must equal the
//! paper-equation prediction, and basic sanity invariants must hold.

use das_core::StripingParams;
use das_kernels::{kernel_by_name, workload, Kernel};
use das_pfs::{Layout, LayoutPolicy};
use das_runtime::{redistribution_cost, run_pipeline, run_scheme, ClusterConfig, SchemeKind};
use das_sim::SimDuration;
use proptest::prelude::*;

/// Random-but-small experiment shapes: the properties are geometry
/// laws, not scale laws, so small cases explore the corner space
/// (partial strips, strips > rows, more servers than strips…).
fn arb_shape() -> impl Strategy<Value = (u64, u64, usize, u32, u32)> {
    (
        8u64..96,              // width
        8u64..96,              // height
        prop::sample::select(vec![256usize, 512, 1024, 4096]), // strip size
        1u32..6,               // storage nodes
        1u32..6,               // compute nodes
    )
}

fn cfg_for(strip: usize, d: u32, c: u32) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_default();
    cfg.strip_size = strip;
    cfg.storage_nodes = d;
    cfg.compute_nodes = c;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn schemes_agree_bit_for_bit(
        (w, h, strip, d, c) in arb_shape(),
        seed in any::<u64>(),
        kernel_idx in 0usize..4,
    ) {
        let kernel_name = ["flow-routing", "gaussian-filter", "sobel-edge", "pointwise-scale"]
            [kernel_idx];
        let kernel = kernel_by_name(kernel_name).unwrap();
        let input = workload::fbm_dem(w, h, seed);
        let cfg = cfg_for(strip, d, c);
        let reference = kernel.apply(&input).fingerprint();
        for scheme in [SchemeKind::Ts, SchemeKind::Nas, SchemeKind::Das] {
            let report = run_scheme(&cfg, scheme, kernel.as_ref(), &input);
            prop_assert_eq!(
                report.output_fingerprint, reference,
                "{} with {} at {}x{} strip {} on {}+{} nodes",
                kernel_name, scheme.name(), w, h, strip, d, c
            );
        }
    }

    #[test]
    fn nas_traffic_equals_paper_prediction(
        (w, h, strip, d, c) in arb_shape(),
        seed in any::<u64>(),
    ) {
        let kernel = kernel_by_name("gaussian-filter").unwrap();
        let input = workload::fbm_dem(w, h, seed);
        let cfg = cfg_for(strip, d, c);
        let report = run_scheme(&cfg, SchemeKind::Nas, kernel.as_ref(), &input);
        let params = StripingParams {
            element_size: 4,
            strip_size: strip as u64,
            layout: Layout::new(LayoutPolicy::RoundRobin, d),
        };
        let predicted =
            params.predict_nas_fetches(&kernel.dependence_offsets(w), input.byte_len());
        prop_assert_eq!(report.bytes.net_server_server, predicted.bytes);
    }

    #[test]
    fn das_never_moves_more_between_servers_than_nas(
        (w, h, strip, d, c) in arb_shape(),
        seed in any::<u64>(),
    ) {
        let kernel = kernel_by_name("flow-routing").unwrap();
        let input = workload::fbm_dem(w, h, seed);
        let cfg = cfg_for(strip, d, c);
        let nas = run_scheme(&cfg, SchemeKind::Nas, kernel.as_ref(), &input);
        let das = run_scheme(&cfg, SchemeKind::Das, kernel.as_ref(), &input);
        // DAS's server traffic (replica maintenance, or none on
        // fallback) must not exceed NAS's dependence traffic plus the
        // bounded replica overhead.
        prop_assert!(
            das.bytes.net_server_server <= nas.bytes.net_server_server + 2 * input.byte_len(),
            "DAS {} vs NAS {}",
            das.bytes.net_server_server,
            nas.bytes.net_server_server
        );
        // And a DAS that offloaded with a satisfied plan beats NAS.
        if let Some(outcome) = &das.das {
            if outcome.offloaded && outcome.predicted_server_bytes == 0
                && nas.bytes.net_server_server > 0
            {
                prop_assert!(das.exec_time <= nas.exec_time);
            }
        }
    }

    #[test]
    fn pipelines_equal_composed_references(
        (w, h, strip, d, c) in arb_shape(),
        seed in any::<u64>(),
        stage_idx in prop::collection::vec(0usize..3, 1..4),
    ) {
        let names = ["gaussian-filter", "median-filter", "sobel-edge"];
        let kernels: Vec<Box<dyn Kernel>> = stage_idx
            .iter()
            .map(|&i| kernel_by_name(names[i]).unwrap())
            .collect();
        let refs: Vec<&dyn Kernel> = kernels.iter().map(|k| k.as_ref()).collect();
        let input = workload::fbm_dem(w, h, seed);
        let mut expected = input.clone();
        for k in &refs {
            expected = k.apply(&expected);
        }
        let cfg = cfg_for(strip, d, c);
        for scheme in [SchemeKind::Ts, SchemeKind::Das] {
            let report = run_pipeline(&cfg, scheme, &refs, &input);
            prop_assert_eq!(report.final_fingerprint, expected.fingerprint());
            prop_assert_eq!(report.stages.len(), refs.len());
            // Total = redistribution + Σ stages, exactly.
            let mut total = report
                .redistribution
                .map(|r| r.time)
                .unwrap_or(SimDuration::ZERO);
            for s in &report.stages {
                total += s.exec_time;
            }
            prop_assert_eq!(total, report.total_time());
        }
    }

    #[test]
    fn redistribution_cost_laws(
        (w, h, strip, d, _c) in arb_shape(),
        seed in any::<u64>(),
        group in 1u64..6,
    ) {
        let input = workload::fbm_dem(w, h, seed);
        let cfg = cfg_for(strip, d, 1);
        // Identity is free.
        let noop = redistribution_cost(&cfg, &input, LayoutPolicy::RoundRobin, LayoutPolicy::RoundRobin);
        prop_assert_eq!(noop.net_bytes, 0);
        // Moving to a replicated layout moves at least the replica
        // copies (unless a single server holds everything).
        let to = LayoutPolicy::GroupedReplicated { group };
        let cost = redistribution_cost(&cfg, &input, LayoutPolicy::RoundRobin, to);
        if d > 1 && input.byte_len() > strip as u64 {
            prop_assert!(cost.net_bytes > 0);
            prop_assert!(cost.time > SimDuration::ZERO);
        }
        // And never more than every strip moving plus two replicas each.
        prop_assert!(cost.net_bytes <= 3 * input.byte_len() + 3 * strip as u64);
    }

    #[test]
    fn execution_time_is_positive_and_bounded_by_serial_work(
        (w, h, strip, d, c) in arb_shape(),
        seed in any::<u64>(),
    ) {
        let kernel = kernel_by_name("gaussian-filter").unwrap();
        let input = workload::fbm_dem(w, h, seed);
        let cfg = cfg_for(strip, d, c);
        for scheme in [SchemeKind::Ts, SchemeKind::Nas, SchemeKind::Das] {
            let report = run_scheme(&cfg, scheme, kernel.as_ref(), &input);
            prop_assert!(report.exec_secs() > 0.0);
            prop_assert!(report.critical_path <= report.exec_time);
            // Sanity ceiling: fully serial execution of every byte and
            // element on one node with generous constants.
            let serial_bound = 10.0
                + input.cells() as f64 * kernel.cost_per_element() * 1e-9 * 10.0
                + input.byte_len() as f64 * 20.0 / cfg.nic.bytes_per_sec;
            prop_assert!(report.exec_secs() < serial_bound);
        }
    }
}
