//! Medical image processing: smoothing and denoising a synthetic scan.
//!
//! ```text
//! cargo run --release --example medical_imaging
//! ```
//!
//! The paper's second application domain (Table I lists the 2D
//! Gaussian filter as "basic operation of signal and medical image
//! processing"; the median filter is named alongside it in Sections I
//! and III-C). This example builds a synthetic scan — smooth anatomy
//! plus salt-and-pepper acquisition noise — and pushes it through both
//! filters under every scheme, checking that denoising really removed
//! the impulses and that the offloaded runs match the reference
//! bit-for-bit.

use das::prelude::*;
use das::kernels::workload;
use das::kernels::Raster;

/// Synthetic scan: smooth fBm "anatomy" with sparse impulse noise.
fn synthetic_scan(width: u64, height: u64, seed: u64) -> Raster {
    let mut scan = workload::fbm_dem(width, height, seed);
    // Deterministic sparse salt noise: one hot pixel per 997 cells.
    let cells = scan.cells();
    let mut i = 313u64;
    while i < cells {
        scan.set_linear(i, 50.0);
        i += 997;
    }
    scan
}

fn count_above(r: &Raster, threshold: f32) -> usize {
    r.as_slice().iter().filter(|&&v| v > threshold).count()
}

fn main() {
    let cfg = ClusterConfig::paper_default();
    let scan = synthetic_scan(2048, 1024, 99);
    let noisy = count_above(&scan, 10.0);
    println!("synthetic scan: {} ({noisy} noise impulses)\n", scan);

    // --- median filter: the denoising pass ---------------------------
    println!("median-filter (denoise):");
    let mut outputs = Vec::new();
    for scheme in [SchemeKind::Nas, SchemeKind::Das, SchemeKind::Ts] {
        let report = run_scheme(&cfg, scheme, &MedianFilter, &scan);
        println!("{}", report.row());
        outputs.push(report.output_fingerprint);
    }
    assert!(outputs.windows(2).all(|w| w[0] == w[1]));

    let denoised = MedianFilter.apply(&scan);
    let left = count_above(&denoised, 10.0);
    println!("  impulses: {noisy} → {left} after median filtering\n");
    assert_eq!(left, 0, "median filter removes isolated impulses");

    // --- Gaussian filter: the smoothing pass -------------------------
    println!("gaussian-filter (smooth):");
    for scheme in [SchemeKind::Nas, SchemeKind::Das, SchemeKind::Ts] {
        let report = run_scheme(&cfg, scheme, &GaussianFilter, &denoised);
        println!("{}", report.row());
        if let Some(das) = &report.das {
            assert!(das.offloaded, "stencil filters offload under DAS");
        }
    }

    let smoothed = GaussianFilter.apply(&denoised);
    let (lo_in, hi_in) = denoised.min_max();
    let (lo_out, hi_out) = smoothed.min_max();
    println!(
        "\n  dynamic range tightened: [{lo_in:.3}, {hi_in:.3}] → [{lo_out:.3}, {hi_out:.3}]"
    );
    assert!(lo_out >= lo_in && hi_out <= hi_in);
}
