//! Scheme comparison over **real sockets**: the networked twin of
//! `scheme_comparison`.
//!
//! ```text
//! cargo run --release --example net_comparison -- \
//!     [--kernel <name>] [--servers 4] [--width 256] [--height 96] [--strip 4096]
//! ```
//!
//! Boots one `dasd` daemon per storage server on ephemeral loopback
//! ports, ingests a fractal DEM under round-robin, then runs TS, NAS
//! and DAS end-to-end over TCP. For each scheme it prints the bytes
//! *measured on the wire* (per connection class) next to the analytic
//! prediction from `das-core`'s bandwidth model — the paper's Eqs.
//! 1–17 checked against a real network stack.

use std::net::TcpListener;

use das::core::StripingParams;
use das::kernels::{kernel_by_name, workload};
use das::net::{run_net_scheme, spawn, DasCluster, DasdConfig, NetScheme};
use das::pfs::{Layout, LayoutPolicy, ServerId, StripId, StripeSpec};

struct Args {
    kernel: String,
    servers: usize,
    width: u64,
    height: u64,
    strip: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        kernel: "flow-routing".into(),
        servers: 4,
        width: 256,
        height: 96,
        strip: 4096,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| {
            it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--kernel" => args.kernel = value(&mut it),
            "--servers" => args.servers = value(&mut it).parse().expect("integer"),
            "--width" => args.width = value(&mut it).parse().expect("integer"),
            "--height" => args.height = value(&mut it).parse().expect("integer"),
            "--strip" => args.strip = value(&mut it).parse().expect("integer"),
            "--help" | "-h" => {
                println!(
                    "usage: net_comparison [--kernel <name>] [--servers N] [--width W] \
                     [--height H] [--strip BYTES]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let kernel = kernel_by_name(&args.kernel)
        .unwrap_or_else(|| panic!("unknown kernel {:?}", args.kernel));
    let offsets = kernel.dependence_offsets(args.width);

    let input = workload::fbm_dem(args.width, args.height, 42);
    let data = input.to_bytes();
    let file_len = data.len() as u64;

    // Boot the cluster on ephemeral loopback ports.
    let listeners: Vec<TcpListener> = (0..args.servers)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    let addrs: Vec<String> =
        listeners.iter().map(|l| l.local_addr().unwrap().to_string()).collect();
    let handles: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, l)| spawn(DasdConfig::new(i as u32, addrs.clone()), l).expect("spawn dasd"))
        .collect();
    println!(
        "booted {} dasd daemons on {} .. {}",
        args.servers,
        addrs.first().unwrap(),
        addrs.last().unwrap()
    );

    let mut cluster = DasCluster::connect(&addrs).expect("connect");
    let file = cluster
        .create_file("dem.raw", file_len, args.strip as u32, LayoutPolicy::RoundRobin)
        .expect("create");
    cluster.put_file(file, &data).expect("ingest");
    println!(
        "ingested {file_len} B DEM ({}x{}, strip {} B, round-robin)\n",
        args.width, args.height, args.strip
    );

    // Analytic predictions on the round-robin layout.
    let rr = StripingParams {
        element_size: 4,
        strip_size: args.strip as u64,
        layout: Layout::new(LayoutPolicy::RoundRobin, args.servers as u32),
    };
    let predicted_ts = 2 * file_len; // input out + output back
    let predicted_nas = rr.predict_nas_fetches(&offsets, file_len);

    println!(
        "{:<6} {:>10} {:>12} {:>12} {:>12} {:>12}  layout",
        "scheme", "offloaded", "c/s wire B", "s/s wire B", "predicted B", "delta"
    );
    let mut das_report = None;
    for scheme in [NetScheme::Ts, NetScheme::Nas, NetScheme::Das] {
        let out_name = format!("out.{}", scheme.name().to_lowercase());
        let report =
            run_net_scheme(&mut cluster, scheme, file, &out_name, &args.kernel, args.width)
                .expect("scheme run");
        let (measured, predicted) = match scheme {
            NetScheme::Ts => (report.client_bytes, predicted_ts),
            NetScheme::Nas => (report.server_bytes, predicted_nas.bytes),
            NetScheme::Das => {
                // Redistribution pulls plus output replica forwards,
                // computed from the adopted layout.
                let spec = StripeSpec::new(args.strip);
                let old = Layout::new(LayoutPolicy::RoundRobin, args.servers as u32);
                let new = Layout::new(report.layout, args.servers as u32);
                let mut p = 0u64;
                for t in 0..spec.strip_count(file_len) {
                    let sid = StripId(t);
                    let sl = spec.strip_len(sid, file_len) as u64;
                    for s in 0..args.servers as u32 {
                        if new.holds(ServerId(s), sid) && !old.holds(ServerId(s), sid) {
                            p += sl;
                        }
                    }
                    p += new.replicas(sid).len() as u64 * sl;
                }
                (report.server_bytes, p)
            }
        };
        let delta = if predicted == 0 {
            "—".to_string()
        } else {
            format!("{:+.1}%", 100.0 * (measured as f64 - predicted as f64) / predicted as f64)
        };
        println!(
            "{:<6} {:>10} {:>12} {:>12} {:>12} {:>12}  {}",
            report.scheme.name(),
            report.offloaded,
            report.client_bytes,
            report.server_bytes,
            predicted,
            delta,
            report.layout.name(),
        );
        das_report = Some(report);
    }

    let das = das_report.unwrap();
    println!(
        "\nall outputs bit-identical (fingerprint {:#018x}); \
         NAS would re-fetch {} strips ({} B) every run, DAS paid {} B of \
         redistribution once",
        das.output_fingerprint, predicted_nas.fetches, predicted_nas.bytes, das.redistribution_bytes
    );

    // Pull each daemon's live metrics registry (`das stats` over the
    // library API) and compare its own Eqs. 1–13 prediction against
    // the dependence traffic it actually served. Predicted counters
    // carry the full cluster-wide prediction on every daemon; the
    // measured side is each daemon's share, so the fleet total is the
    // sum of measured vs the max of predicted.
    println!("\nlive daemon registries (predicted vs measured dependence traffic):");
    let dumps = cluster.metrics_dump_all().expect("metrics dump");
    let parsed: Vec<(u32, Vec<das::obs::Sample>)> =
        dumps.iter().map(|(id, text)| (*id, das::obs::parse(text))).collect();
    let mut fleet_meas = 0.0f64;
    let mut fleet_pred = 0.0f64;
    for (id, samples) in &parsed {
        let v = |name: &str| das::obs::sample_value(samples, name, &[]).unwrap_or(0.0);
        let outcome = |o: &str| {
            das::obs::sample_value(samples, "dasd_decisions_total", &[("outcome", o)])
                .unwrap_or(0.0)
        };
        fleet_meas += v("dasd_dep_fetch_bytes_total");
        fleet_pred = fleet_pred.max(v("dasd_predicted_dep_fetch_bytes_total"));
        println!(
            "  server {id}: decisions das={} nas={} ts={}  dep fetches {} ({} B)  \
             strips computed {}",
            outcome("das"),
            outcome("nas"),
            outcome("ts"),
            v("dasd_dep_fetches_total"),
            v("dasd_dep_fetch_bytes_total"),
            v("dasd_strips_computed_total"),
        );
    }
    let delta = if fleet_pred > 0.0 {
        format!("{:+.1}%", (fleet_meas - fleet_pred) / fleet_pred * 100.0)
    } else {
        "—".to_string()
    };
    println!(
        "  fleet: predicted {fleet_pred} B of dependence fetches, measured {fleet_meas} B \
         (error {delta})"
    );

    cluster.shutdown_all().expect("shutdown");
    drop(cluster);
    for h in handles {
        h.join();
    }
}
