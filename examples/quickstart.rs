//! Quickstart: one offloaded operation under all three schemes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates a fractal terrain raster, runs the paper's flow-routing
//! kernel under TS (traditional storage), NAS (naive active storage)
//! and DAS (the paper's dynamic active storage), and prints the
//! execution time, sustained bandwidth and data movement of each —
//! a one-screen version of the paper's Fig. 11.

use das::prelude::*;

fn main() {
    // The paper's first experiment: 24 nodes, half storage and half
    // compute (ClusterConfig::paper_default is 12+12), data scaled
    // from the paper's 24 GB to 24 MiB (see DESIGN.md).
    let cfg = ClusterConfig::paper_default();
    let dem = das::runtime::sweep::figure_workload(24, 2012);

    println!("input: {} ({} strips of {} KiB on {} servers)\n",
        dem,
        dem.byte_len().div_ceil(cfg.strip_size as u64),
        cfg.strip_size / 1024,
        cfg.storage_nodes,
    );

    let mut fingerprints = Vec::new();
    for scheme in [SchemeKind::Nas, SchemeKind::Das, SchemeKind::Ts] {
        let report = run_scheme(&cfg, scheme, &FlowRouting, &dem);
        println!("{}", report.row());
        if let Some(das) = &report.das {
            println!(
                "     └─ decision: offloaded={}, layout={}, predicted dependence bytes={}",
                das.offloaded,
                das.layout.name(),
                das.predicted_server_bytes
            );
        }
        fingerprints.push(report.output_fingerprint);
    }

    assert!(fingerprints.windows(2).all(|w| w[0] == w[1]),
        "all schemes must produce bit-identical outputs");
    println!("\nall schemes produced bit-identical outputs ✔");

    // Where does the time go? Re-run DAS at a small size with tracing
    // and render the per-node activity Gantt (█ = busy, · = idle).
    let mut traced = ClusterConfig::paper_default();
    traced.trace = true;
    traced.storage_nodes = 4;
    traced.compute_nodes = 4;
    let small = das::runtime::sweep::figure_workload(2, 2012);
    let das = run_scheme(&traced, SchemeKind::Das, &FlowRouting, &small);
    println!("\nDAS activity at 2 MiB on 4+4 nodes:");
    print!("{}", das.trace.as_ref().expect("tracing enabled").render_gantt(64));

    // And the same run's time, grouped by phase (resource-seconds).
    println!("\nwhere the time goes (per phase, summed over nodes):");
    for scheme in [SchemeKind::Nas, SchemeKind::Das, SchemeKind::Ts] {
        let r = run_scheme(&traced, scheme, &FlowRouting, &small);
        let by_tag = r.trace.as_ref().unwrap().time_by_tag();
        let mut phases: Vec<String> = by_tag
            .iter()
            .filter(|(_, d)| d.as_nanos() > 0)
            .map(|(tag, d)| format!("{tag} {d}"))
            .collect();
        phases.sort();
        println!("  {:<4} {}", scheme.name(), phases.join(", "));
    }
}
