//! Reproducibility driver: run the paper's experiment grid and write
//! machine-readable results.
//!
//! ```text
//! cargo run --release --example run_experiments -- [outdir]
//! ```
//!
//! Executes the Fig. 10–14 grid (three schemes × Table I kernels ×
//! the size and node sweeps) and writes one JSON-lines file per
//! figure under `outdir` (default `results/`). Every run is
//! deterministic, so the artifacts are stable across machines — diff
//! them to detect behavioural changes.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

use das::prelude::*;

const SIZES: [u64; 4] = [24, 36, 48, 60];
const NODES: [u32; 4] = [24, 36, 48, 60];
const KERNELS: [&str; 3] = ["flow-routing", "flow-accumulation", "gaussian-filter"];
const SEED: u64 = 2012;

fn write_lines(path: &PathBuf, lines: &[String]) {
    let mut f = fs::File::create(path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    for line in lines {
        writeln!(f, "{line}").expect("write result line");
    }
    println!("wrote {} runs -> {}", lines.len(), path.display());
}

fn main() {
    let outdir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    fs::create_dir_all(&outdir).expect("create output directory");
    let cfg = ClusterConfig::paper_default();

    // Figs. 10–12: scheme × kernel × size grid at 24 nodes.
    let mut grid = Vec::new();
    for kernel in KERNELS {
        for scheme in [SchemeKind::Nas, SchemeKind::Das, SchemeKind::Ts] {
            for p in size_sweep(&cfg, scheme, kernel, &SIZES, SEED) {
                grid.push(p.report.to_json());
            }
        }
    }
    write_lines(&outdir.join("size_grid.jsonl"), &grid);

    // Fig. 13: node sweep at 60 MiB.
    let mut nodes = Vec::new();
    for scheme in [SchemeKind::Das, SchemeKind::Ts] {
        for p in node_sweep(&cfg, scheme, "flow-routing", 60, &NODES, SEED) {
            nodes.push(p.report.to_json());
        }
    }
    write_lines(&outdir.join("node_sweep.jsonl"), &nodes);

    // Cross-checks before declaring the artifacts good: identical
    // outputs per cell and the headline ordering.
    let a = &size_sweep(&cfg, SchemeKind::Das, "flow-routing", &[24], SEED)[0].report;
    let b = &size_sweep(&cfg, SchemeKind::Ts, "flow-routing", &[24], SEED)[0].report;
    let c = &size_sweep(&cfg, SchemeKind::Nas, "flow-routing", &[24], SEED)[0].report;
    assert_eq!(a.output_fingerprint, b.output_fingerprint);
    assert_eq!(a.output_fingerprint, c.output_fingerprint);
    assert!(a.exec_time < b.exec_time && b.exec_time < c.exec_time);
    println!("verification: outputs identical, DAS < TS < NAS at 24 MiB ✔");
}
