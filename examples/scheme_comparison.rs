//! Scheme comparison CLI: sweep kernels, sizes and node counts.
//!
//! ```text
//! cargo run --release --example scheme_comparison -- \
//!     [--kernel <name>] [--sizes 24,36,48,60] [--nodes 24] [--seed N]
//! ```
//!
//! Runs TS, NAS and DAS over the requested grid and prints one table
//! per kernel — a configurable version of the paper's Figs. 10–12.
//! Kernel names: flow-routing, flow-accumulation, gaussian-filter,
//! median-filter, slope-analysis, or `all`.

use das::prelude::*;

struct Args {
    kernels: Vec<String>,
    sizes: Vec<u64>,
    nodes: u32,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        kernels: vec!["flow-routing".into()],
        sizes: vec![24],
        nodes: 24,
        seed: 2012,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| {
            it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--kernel" => {
                let v = value(&mut it);
                args.kernels = if v == "all" {
                    das::kernels::kernel_names().iter().map(|s| s.to_string()).collect()
                } else {
                    vec![v]
                };
            }
            "--sizes" => {
                args.sizes = value(&mut it)
                    .split(',')
                    .map(|s| s.trim().parse().expect("sizes are integers (MiB)"))
                    .collect();
            }
            "--nodes" => args.nodes = value(&mut it).parse().expect("nodes is an integer"),
            "--seed" => args.seed = value(&mut it).parse().expect("seed is an integer"),
            "--help" | "-h" => {
                println!(
                    "usage: scheme_comparison [--kernel <name>|all] [--sizes 24,36,48,60] \
                     [--nodes N] [--seed N]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = ClusterConfig::paper_default().with_total_nodes(args.nodes);
    println!(
        "cluster: {} storage + {} compute nodes, {} KiB strips\n",
        cfg.storage_nodes,
        cfg.compute_nodes,
        cfg.strip_size / 1024
    );

    for kernel in &args.kernels {
        println!("=== {kernel} ===");
        for &mib in &args.sizes {
            let mut rows = Vec::new();
            let mut fps = Vec::new();
            for scheme in [SchemeKind::Nas, SchemeKind::Das, SchemeKind::Ts] {
                let points = size_sweep(&cfg, scheme, kernel, &[mib], args.seed);
                let report = &points[0].report;
                rows.push(report.row());
                fps.push(report.output_fingerprint);
            }
            assert!(fps.windows(2).all(|w| w[0] == w[1]), "scheme outputs diverged");
            for row in rows {
                println!("{row}");
            }
            println!();
        }
    }
}
