//! Terrain analysis pipeline: flow-routing → flow-accumulation.
//!
//! ```text
//! cargo run --release --example terrain_analysis
//! ```
//!
//! The paper's motivating scenario (Section I): "the flow-accumulation
//! operation always follows the flow-routing operation … they both
//! need to access 8-neighbor data elements", so when DAS learns a
//! successive operation shares the dependence pattern, it reconfigures
//! the file layout **once** and every stage of the pipeline runs with
//! zero dependence traffic.
//!
//! This example drives the Active Storage Client API directly (the
//! paper's Fig. 3 workflow, including the layout reconfiguration),
//! runs the offloaded pipeline functionally on the storage servers,
//! and finishes with the full O'Callaghan–Mark global accumulation —
//! the extension beyond the paper's per-element kernel.

use das::prelude::*;
use das::kernels::workload;

fn main() {
    let width = 512u64;
    let height = 1024u64;
    let dem = workload::fbm_dem(width, height, 7);

    // A 8-server parallel file system; the DEM arrives with the
    // default round-robin striping, as any freshly written file would.
    let mut pfs = PfsCluster::new(8);
    let file = pfs
        .create("terrain.dem", &dem.to_bytes(), StripeSpec::default(), LayoutPolicy::RoundRobin)
        .expect("ingest DEM");

    let client = ActiveStorageClient::with_builtin_features();
    let opts = RequestOptions { img_width: width, successive: true, ..Default::default() };

    // ---- stage 1: flow-routing -------------------------------------
    let (decision, traffic) = client
        .decide_and_prepare(&mut pfs, file, "flow-routing", &opts)
        .expect("flow-routing decision");
    println!("flow-routing  : offload={}", decision.is_offload());
    println!(
        "                layout now {} (moved {:.1} MiB to reconfigure)",
        pfs.distribution_info(file).unwrap().policy.name(),
        traffic.bytes_moved() as f64 / (1024.0 * 1024.0),
    );
    assert!(decision.is_offload());

    // Offloaded execution (functional): each server processes its local
    // strips; the improved layout makes every dependence local.
    let dirs = FlowRouting.apply(&dem);

    // The intermediate raster is written back in the same layout, so…
    let dirs_file = pfs
        .create("terrain.dirs", &dirs.to_bytes(), StripeSpec::default(),
            pfs.distribution_info(file).unwrap().policy)
        .expect("store direction raster");

    // ---- stage 2: flow-accumulation ---------------------------------
    let (decision2, traffic2) = client
        .decide_and_prepare(&mut pfs, dirs_file, "flow-accumulation", &opts)
        .expect("flow-accumulation decision");
    println!("flow-accum    : offload={}", decision2.is_offload());
    println!(
        "                layout reused, {:.1} MiB moved (expect 0.0)",
        traffic2.bytes_moved() as f64 / (1024.0 * 1024.0),
    );
    assert!(decision2.is_offload());
    assert_eq!(traffic2.bytes_moved(), 0, "second stage reuses the layout");

    let acc_step = FlowAccumulationStep.apply(&dirs);
    println!(
        "one-step accumulation: max direct inflow {:.0}, mean {:.3}",
        acc_step.min_max().1,
        acc_step.sum() / acc_step.cells() as f64,
    );

    // ---- extension: full upstream accumulation ----------------------
    let acc = flow_accumulation_global(&dirs);
    let (_, peak) = acc.min_max();
    println!(
        "global accumulation: largest catchment passes {:.0} of {} cells through one point",
        peak,
        acc.cells(),
    );
    assert!(peak >= 1.0);

    // And the timing view of the same pipeline, per scheme:
    println!("\ntimed comparison (flow-routing stage, 12+12 nodes):");
    let cfg = ClusterConfig::paper_default();
    let timed_dem = das::runtime::sweep::figure_workload(24, 7);
    for scheme in [SchemeKind::Nas, SchemeKind::Das, SchemeKind::Ts] {
        let report = run_scheme(&cfg, scheme, &FlowRouting, &timed_dem);
        println!("{}", report.row());
    }
}
